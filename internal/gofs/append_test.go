package gofs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendFrom grows the dataset at dir with steps [from, to) of a reference
// collection built by makeDataset, returning the store.
func appendFrom(t *testing.T, dir string, from, to int) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewAppender(s)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := makeDataset(t, to, 3)
	for step := from; step < to; step++ {
		if err := app.Append(c.Instance(step)); err != nil {
			t.Fatalf("append step %d: %v", step, err)
		}
	}
	return s
}

// readDirFiles maps file name -> content for every regular file matching
// keep (nil = all) directly under dir.
func readDirFiles(t *testing.T, dir string, keep func(string) bool) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || (keep != nil && !keep(e.Name())) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func plainSlice(name string) bool {
	return strings.HasSuffix(name, ".slice") && !strings.Contains(name, ".part")
}

// TestAppendMatchesOffline: growing a dataset live, one timestep at a
// time, yields completed packs byte-identical to an offline WriteDataset
// of the full collection — for both the full (v1) and delta (v2) formats.
func TestAppendMatchesOffline(t *testing.T) {
	const steps, k = 12, 3
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"full", Options{Pack: 4, Bin: 2}},
		{"delta", Options{Pack: 4, Bin: 2, SnapshotEvery: 3}},
		{"compressed", Options{Pack: 4, Bin: 2, SnapshotEvery: 3, Compress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, a := makeDataset(t, steps, k)
			offline := t.TempDir()
			if err := WriteDatasetOptions(offline, c, a, tc.opts); err != nil {
				t.Fatal(err)
			}
			// Live: seed with the first pack offline, append the rest.
			live := t.TempDir()
			seed, _ := makeDataset(t, 4, k)
			if err := WriteDatasetOptions(live, seed, a, tc.opts); err != nil {
				t.Fatal(err)
			}
			s := appendFrom(t, live, 4, steps)
			if s.Timesteps() != steps {
				t.Fatalf("watermark = %d, want %d", s.Timesteps(), steps)
			}

			wantSlices := readDirFiles(t, filepath.Join(offline, sliceDir), plainSlice)
			gotSlices := readDirFiles(t, filepath.Join(live, sliceDir), plainSlice)
			if len(wantSlices) != len(gotSlices) {
				t.Fatalf("plain slice count: offline %d, live %d", len(wantSlices), len(gotSlices))
			}
			for name, want := range wantSlices {
				got, ok := gotSlices[name]
				if !ok {
					t.Fatalf("live dataset missing %s", name)
				}
				if string(want) != string(got) {
					t.Errorf("%s differs between offline and live write", name)
				}
			}
			wantMan, err := os.ReadFile(filepath.Join(offline, manifestFile))
			if err != nil {
				t.Fatal(err)
			}
			gotMan, err := os.ReadFile(filepath.Join(live, manifestFile))
			if err != nil {
				t.Fatal(err)
			}
			if string(wantMan) != string(gotMan) {
				t.Error("manifest differs between offline and live write")
			}

			// Logical equality of the whole collection, including any tail.
			reopened, err := Open(live)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reopened.LoadAll()
			if err != nil {
				t.Fatal(err)
			}
			collectionsEqual(t, c, got)
		})
	}
}

// TestAppendPartialTail: a dataset whose tail pack is incomplete publishes
// part-named slices, loads correctly through a fresh Open, and continues
// growing after an Appender restart (rehydration) with byte-identical
// results to an uninterrupted appender.
func TestAppendPartialTail(t *testing.T) {
	const steps, k = 11, 3 // pack 4 -> tail pack holds 3 of 4 steps
	opts := Options{Pack: 4, Bin: 2, SnapshotEvery: 3}
	c, a := makeDataset(t, steps, k)

	// Uninterrupted: one appender session for steps 4..10.
	uni := t.TempDir()
	seed, _ := makeDataset(t, 4, k)
	if err := WriteDatasetOptions(uni, seed, a, opts); err != nil {
		t.Fatal(err)
	}
	appendFrom(t, uni, 4, steps)

	// Interrupted: stop after step 7, reopen (rehydrates mid-pack), finish.
	inter := t.TempDir()
	if err := WriteDatasetOptions(inter, seed, a, opts); err != nil {
		t.Fatal(err)
	}
	appendFrom(t, inter, 4, 8)
	appendFrom(t, inter, 8, steps)

	uniFiles := readDirFiles(t, filepath.Join(uni, sliceDir), nil)
	interFiles := readDirFiles(t, filepath.Join(inter, sliceDir), nil)
	for name, want := range uniFiles {
		got, ok := interFiles[name]
		if !ok {
			t.Fatalf("interrupted run missing %s", name)
		}
		if string(want) != string(got) {
			t.Errorf("%s differs between uninterrupted and restarted appender", name)
		}
	}

	s, err := Open(inter)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	collectionsEqual(t, c, got)
}

// TestAppendLiveReaders: a Loader and an InstanceCache opened before
// appends keep working as the dataset grows — the cache heals its stale
// tail-pack entry instead of indexing out of range, and Delta stays nil
// rather than wrong for timesteps a stale entry does not cover.
func TestAppendLiveReaders(t *testing.T) {
	const k = 3
	opts := Options{Pack: 4, Bin: 2, SnapshotEvery: 3}
	dir := t.TempDir()
	seed, a := makeDataset(t, 5, k)
	if err := WriteDatasetOptions(dir, seed, a, opts); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewAppender(s)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewInstanceCache(s, 4)
	loader := NewLoader(s)
	// Warm the tail pack (timesteps 4) at its 1-step length.
	if _, err := cache.Load(4); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(4); err != nil {
		t.Fatal(err)
	}

	c, _ := makeDataset(t, 8, k)
	for step := 5; step < 8; step++ {
		if err := app.Append(c.Instance(step)); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Timesteps() != 8 {
		t.Fatalf("cache sees %d timesteps, want 8", cache.Timesteps())
	}
	for step := 5; step < 8; step++ {
		ins, err := cache.Load(step)
		if err != nil {
			t.Fatalf("cache load %d after append: %v", step, err)
		}
		if ins.Timestep != step {
			t.Fatalf("cache load %d returned timestep %d", step, ins.Timestep)
		}
		if ins, err := loader.Load(step); err != nil || ins.Timestep != step {
			t.Fatalf("loader load %d after append: %v", step, err)
		}
	}
	if d := cache.Delta(6); d == nil || d.Timestep != 6 {
		t.Fatalf("Delta(6) = %+v after heal", d)
	}
}

// TestTrimSuperseded: appending leaves superseded part-file generations
// behind; trimming under a zero budget removes all but the live tail and
// the two most recent superseded generations per bin, and the dataset
// still loads afterwards.
func TestTrimSuperseded(t *testing.T) {
	const steps, k = 11, 3
	opts := Options{Pack: 4, Bin: 2, SnapshotEvery: 3}
	dir := t.TempDir()
	seed, a := makeDataset(t, 4, k)
	if err := WriteDatasetOptions(dir, seed, a, opts); err != nil {
		t.Fatal(err)
	}
	s := appendFrom(t, dir, 4, steps)

	countParts := func() int {
		n := 0
		for name := range readDirFiles(t, filepath.Join(dir, sliceDir), nil) {
			if strings.Contains(name, ".part") {
				n++
			}
		}
		return n
	}
	before := countParts()
	removed, freed, err := s.TrimSuperseded(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || freed <= 0 {
		t.Fatalf("trim removed %d files / %d bytes, want > 0", removed, freed)
	}
	after := countParts()
	if after >= before {
		t.Fatalf("part files %d -> %d, want fewer", before, after)
	}
	// The live generation plus up to two protected superseded generations
	// per bin survive a zero budget.
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadAll()
	if err != nil {
		t.Fatalf("dataset unreadable after trim: %v", err)
	}
	want, _ := makeDataset(t, steps, k)
	collectionsEqual(t, want, got)

	// Idempotent: a second trim with everything already protected is a
	// no-op.
	if removed, _, err := s.TrimSuperseded(0); err != nil || removed != 0 {
		t.Fatalf("second trim removed %d (err %v), want 0", removed, err)
	}
}

// TestAppendRejectsBadInstances: wrong timestep or time never touches disk.
func TestAppendRejectsBadInstances(t *testing.T) {
	const k = 3
	dir := t.TempDir()
	seed, a := makeDataset(t, 4, k)
	if err := WriteDatasetOptions(dir, seed, a, Options{Pack: 4, Bin: 2}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewAppender(s)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := makeDataset(t, 8, k)
	wrongStep := c.Instance(6) // want timestep 4
	if err := app.Append(wrongStep); err == nil {
		t.Fatal("append with wrong timestep succeeded")
	}
	bad := c.Instance(4).Clone()
	bad.Time += 1
	if err := app.Append(bad); err == nil {
		t.Fatal("append with wrong wall time succeeded")
	}
	if s.Timesteps() != 4 {
		t.Fatalf("failed appends advanced the watermark to %d", s.Timesteps())
	}
}
