// Package gofs is the storage layer of the reproduction, modelled on
// GoFFish's GoFS distributed file system: time-series graph datasets are
// laid out on disk as slice files, each packing a run of consecutive
// timesteps (temporal packing, default 10) for a group of up to `bin`
// subgraphs of one partition (subgraph binning, default 5). Packing gives
// the incremental loader temporal locality — an entire pack is materialized
// when its first timestep is touched, producing the every-10th-timestep
// load spike visible in the paper's Fig 6.
package gofs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"tsgraph/internal/graph"
)

// Magic and version identify the on-disk format.
const (
	sliceMagic    = 0x476F4653 // "GoFS"
	templateMagic = 0x476F4754 // "GoGT"
	manifestMagic = 0x476F464D // "GoFM"
	formatVersion = 1
	// formatVersionDelta marks slice and manifest files of delta-encoded
	// datasets (Options.SnapshotEvery > 0): periodic full snapshots with
	// sparse per-timestep deltas chained between them. Readers accept both
	// versions; writers emit version 1 unless a snapshot interval is set, so
	// existing full-format datasets are untouched byte for byte.
	formatVersionDelta = 2
)

// Per-timestep record kinds inside a version-2 slice file.
const (
	recSnapshot = 0 // full column values for the bin
	recDelta    = 1 // values only at the changed indices, patched over t-1
)

// maxStringLen bounds any single encoded string; guards against corrupt
// length prefixes allocating unbounded memory.
const maxStringLen = 1 << 24

// maxListLen bounds encoded slice lengths for the same reason.
const maxListLen = 1 << 31

// writer wraps a bufio.Writer with a running CRC and sticky error.
type writer struct {
	w   *bufio.Writer
	crc uint32
	err error
	n   int64
}

func newWriter(w io.Writer) *writer {
	return &writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	w.n += int64(len(p))
}

func (w *writer) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.write(buf[:])
}

func (w *writer) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.write(buf[:])
}

func (w *writer) i32(v int32)    { w.u32(uint32(v)) }
func (w *writer) i64(v int64)    { w.u64(uint64(v)) }
func (w *writer) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *writer) byteVal(v byte) { w.write([]byte{v}) }
func (w *writer) boolVal(v bool) {
	if v {
		w.byteVal(1)
	} else {
		w.byteVal(0)
	}
}

func (w *writer) str(s string) {
	if len(s) > maxStringLen {
		w.err = fmt.Errorf("gofs: string of %d bytes exceeds format limit", len(s))
		return
	}
	w.u32(uint32(len(s)))
	w.write([]byte(s))
}

func (w *writer) i32s(vs []int32) {
	w.u64(uint64(len(vs)))
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		w.write(buf[:])
	}
}

func (w *writer) i64s(vs []int64) {
	w.u64(uint64(len(vs)))
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		w.write(buf[:])
	}
}

// finish writes the trailing CRC (not itself checksummed) and flushes.
func (w *writer) finish() error {
	if w.err != nil {
		return w.err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.crc)
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// reader wraps a bufio.Reader with a running CRC and sticky error.
type reader struct {
	r   *bufio.Reader
	crc uint32
	err error
}

func newReader(r io.Reader) *reader {
	return &reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = err
		return
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, p)
}

func (r *reader) u32() uint32 {
	var buf [4]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

func (r *reader) u64() uint64 {
	var buf [8]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) byteVal() byte {
	var buf [1]byte
	r.read(buf[:])
	return buf[0]
}

func (r *reader) boolVal() bool { return r.byteVal() != 0 }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.fail(fmt.Errorf("gofs: string length %d exceeds format limit", n))
		return ""
	}
	buf := make([]byte, n)
	r.read(buf)
	return string(buf)
}

func (r *reader) listLen() int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > maxListLen {
		r.fail(fmt.Errorf("gofs: list length %d exceeds format limit", n))
		return 0
	}
	return int(n)
}

func (r *reader) i32s() []int32 {
	n := r.listLen()
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	var buf [4]byte
	for i := range out {
		r.read(buf[:])
		if r.err != nil {
			return nil
		}
		out[i] = int32(binary.LittleEndian.Uint32(buf[:]))
	}
	return out
}

func (r *reader) i64s() []int64 {
	n := r.listLen()
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	var buf [8]byte
	for i := range out {
		r.read(buf[:])
		if r.err != nil {
			return nil
		}
		out[i] = int64(binary.LittleEndian.Uint64(buf[:]))
	}
	return out
}

// verifyCRC reads the trailing checksum and compares it with the running
// CRC of everything read so far.
func (r *reader) verifyCRC() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc
	var buf [4]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		return fmt.Errorf("gofs: reading checksum: %w", err)
	}
	got := binary.LittleEndian.Uint32(buf[:])
	if got != want {
		return fmt.Errorf("gofs: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return nil
}

// writeSchema serializes a schema.
func writeSchema(w *writer, s *graph.Schema) {
	w.u32(uint32(s.Len()))
	for i := 0; i < s.Len(); i++ {
		w.str(s.Name(i))
		w.byteVal(byte(s.Type(i)))
	}
}

// readSchema deserializes a schema.
func readSchema(r *reader) *graph.Schema {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > 1<<16 {
		r.fail(fmt.Errorf("gofs: schema with %d attributes exceeds limit", n))
		return nil
	}
	names := make([]string, n)
	types := make([]graph.AttrType, n)
	for i := 0; i < n; i++ {
		names[i] = r.str()
		types[i] = graph.AttrType(r.byteVal())
	}
	if r.err != nil {
		return nil
	}
	s, err := graph.NewSchema(names, types)
	if err != nil {
		r.fail(err)
		return nil
	}
	return s
}

// writeColumnValues serializes the values of a column at the given indices.
func writeColumnValues(w *writer, c *graph.Column, indices []int32) {
	w.byteVal(byte(c.Type))
	w.u64(uint64(len(indices)))
	switch c.Type {
	case graph.TInt:
		for _, i := range indices {
			w.i64(c.Ints[i])
		}
	case graph.TFloat:
		for _, i := range indices {
			w.f64(c.Floats[i])
		}
	case graph.TString:
		for _, i := range indices {
			w.str(c.Strings[i])
		}
	case graph.TStringList:
		for _, i := range indices {
			list := c.StringLists[i]
			w.u32(uint32(len(list)))
			for _, s := range list {
				w.str(s)
			}
		}
	case graph.TBool:
		for _, i := range indices {
			w.boolVal(c.Bools[i])
		}
	default:
		w.err = fmt.Errorf("gofs: cannot encode column type %v", c.Type)
	}
}

// copyColumnValues carries the previous timestep's values forward into dst
// at the given indices, before a delta record patches the changed subset.
// String and string-list values share their backing storage with prev —
// decoded instances are read-only, so aliasing is safe and keeps the copy
// O(indices) regardless of content size (Instance.Clone deep-copies if a
// caller ever needs to mutate).
func copyColumnValues(prev, dst *graph.Column, indices []int32) {
	switch dst.Type {
	case graph.TInt:
		for _, i := range indices {
			dst.Ints[i] = prev.Ints[i]
		}
	case graph.TFloat:
		for _, i := range indices {
			dst.Floats[i] = prev.Floats[i]
		}
	case graph.TString:
		for _, i := range indices {
			dst.Strings[i] = prev.Strings[i]
		}
	case graph.TStringList:
		for _, i := range indices {
			dst.StringLists[i] = prev.StringLists[i]
		}
	case graph.TBool:
		for _, i := range indices {
			dst.Bools[i] = prev.Bools[i]
		}
	}
}

// readColumnValues deserializes column values into dst at the given indices.
// The on-disk type and count must match.
func readColumnValues(r *reader, dst *graph.Column, indices []int32) {
	typ := graph.AttrType(r.byteVal())
	count := r.u64()
	if r.err != nil {
		return
	}
	if typ != dst.Type {
		r.fail(fmt.Errorf("gofs: column type %v on disk, %v expected", typ, dst.Type))
		return
	}
	if count != uint64(len(indices)) {
		r.fail(fmt.Errorf("gofs: column has %d values, expected %d", count, len(indices)))
		return
	}
	switch dst.Type {
	case graph.TInt:
		for _, i := range indices {
			dst.Ints[i] = r.i64()
		}
	case graph.TFloat:
		for _, i := range indices {
			dst.Floats[i] = r.f64()
		}
	case graph.TString:
		for _, i := range indices {
			dst.Strings[i] = r.str()
		}
	case graph.TStringList:
		for _, i := range indices {
			n := r.u32()
			if r.err != nil {
				return
			}
			if n > 1<<20 {
				r.fail(fmt.Errorf("gofs: string list of %d entries exceeds limit", n))
				return
			}
			var list []string
			if n > 0 {
				list = make([]string, n)
				for j := range list {
					list[j] = r.str()
				}
			}
			dst.StringLists[i] = list
		}
	case graph.TBool:
		for _, i := range indices {
			dst.Bools[i] = r.boolVal()
		}
	default:
		r.fail(fmt.Errorf("gofs: cannot decode column type %v", dst.Type))
	}
}
