package gofs

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("timestep state: pending messages + program state")
	if err := WriteCheckpoint(dir, 2, 7, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(dir, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// Identity mismatches are refused.
	if _, err := ReadCheckpoint(dir, 3, 7); err == nil {
		t.Error("checkpoint for rank 2 readable as rank 3")
	}
	// Empty payloads survive the roundtrip as empty, not nil-ish garbage.
	if err := WriteCheckpoint(dir, 2, 8, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadCheckpoint(dir, 2, 8); err != nil || len(got) != 0 {
		t.Fatalf("empty checkpoint: payload %q err %v", got, err)
	}
}

func TestCheckpointRetentionAndLatest(t *testing.T) {
	dir := t.TempDir()
	for ts := 0; ts < 5; ts++ {
		if err := WriteCheckpoint(dir, 0, ts, []byte{byte(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	steps, err := CheckpointTimesteps(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != checkpointKeep || steps[0] != 3 || steps[1] != 4 {
		t.Fatalf("retained %v, want [3 4]", steps)
	}
	ts, payload, err := LatestCheckpoint(dir, 0)
	if err != nil || ts != 4 || !bytes.Equal(payload, []byte{4}) {
		t.Fatalf("latest = (%d, %q, %v), want (4, 0x04, nil)", ts, payload, err)
	}
	// Another rank's files are invisible.
	if ts, _, _ := LatestCheckpoint(dir, 9); ts != -1 {
		t.Fatalf("rank 9 latest = %d, want -1", ts)
	}
	// Missing directory is "no checkpoint", not an error.
	if ts, _, err := LatestCheckpoint(filepath.Join(dir, "nope"), 0); err != nil || ts != -1 {
		t.Fatalf("missing dir: (%d, %v), want (-1, nil)", ts, err)
	}
}

// corrupt maps a named corruption onto a checkpoint file's bytes.
func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCorruptionFallsBack is the table-driven corruption matrix:
// every way the newest checkpoint can be damaged must produce a clean read
// error and make recovery fall back to the previous complete checkpoint —
// never a partial or wrong payload.
func TestCheckpointCorruptionFallsBack(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{
			name:    "truncated mid-payload",
			mutate:  func(b []byte) []byte { return b[:len(b)-9] },
			wantErr: "EOF",
		},
		{
			name:    "truncated before checksum",
			mutate:  func(b []byte) []byte { return b[:len(b)-4] },
			wantErr: "checksum",
		},
		{
			name: "payload bit flip (bad CRC)",
			mutate: func(b []byte) []byte {
				b[len(b)-6] ^= 0x40
				return b
			},
			wantErr: "checksum mismatch",
		},
		{
			name: "stale version",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[4:8], checkpointVersion+7)
				return b
			},
			wantErr: "unsupported checkpoint version",
		},
		{
			name: "bad magic",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[0:4], 0xDEADBEEF)
				return b
			},
			wantErr: "bad magic",
		},
		{
			name:    "empty file",
			mutate:  func([]byte) []byte { return nil },
			wantErr: "EOF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			older := []byte("good state @ t3")
			if err := WriteCheckpoint(dir, 1, 3, older); err != nil {
				t.Fatal(err)
			}
			if err := WriteCheckpoint(dir, 1, 4, []byte("doomed state @ t4")); err != nil {
				t.Fatal(err)
			}
			corruptFile(t, CheckpointPath(dir, 1, 4), tc.mutate)

			if _, err := ReadCheckpoint(dir, 1, 4); err == nil {
				t.Fatal("corrupt checkpoint read cleanly")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}

			ts, payload, err := LatestCheckpoint(dir, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ts != 3 || !bytes.Equal(payload, older) {
				t.Fatalf("fallback = (t%d, %q), want (t3, %q)", ts, payload, older)
			}
		})
	}
}

// TestCheckpointAllCorruptMeansNone: when every checkpoint is damaged,
// recovery reports "no checkpoint" (fresh start) rather than an error or a
// partial load.
func TestCheckpointAllCorruptMeansNone(t *testing.T) {
	dir := t.TempDir()
	for ts := 3; ts <= 4; ts++ {
		if err := WriteCheckpoint(dir, 0, ts, []byte("x")); err != nil {
			t.Fatal(err)
		}
		corruptFile(t, CheckpointPath(dir, 0, ts), func(b []byte) []byte { return b[:5] })
	}
	ts, payload, err := LatestCheckpoint(dir, 0)
	if err != nil || ts != -1 || payload != nil {
		t.Fatalf("all-corrupt latest = (%d, %q, %v), want (-1, nil, nil)", ts, payload, err)
	}
}

// TestCheckpointWriteLeavesNoTempDebris: the temp file used for atomic
// publication must not survive a successful write.
func TestCheckpointWriteLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 0, 0, []byte("s")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt_") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}
