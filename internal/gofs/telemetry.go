package gofs

import (
	"io"
	"sync/atomic"
	"time"

	"tsgraph/internal/obs"
)

// Telemetry is the storage tier's instrumentation: latency histograms for
// pack decodes and slice-file reads, a bytes-read counter, and static
// encoding-shape gauges (delta-chain depth, snapshot/delta step split)
// computed from the manifest. Every Store carries one (created at Open),
// so Loader, InstanceCache, ReadPack, and LoadAll all feed the same
// counters without any caller wiring; a daemon that wants the families on
// /metrics registers the store's Telemetry with its obs.Registry.
//
// Observation is two atomic adds plus a bounded scan over 20 bucket
// bounds — cheap relative to the milliseconds a pack decode or file read
// costs, so the storage hot path stays undistorted.
type Telemetry struct {
	packDecode storageHist
	sliceRead  storageHist
	bytesRead  atomic.Int64

	// Encoding shape, computed from the manifest at Open and refreshed on
	// every live-append publish (atomics because scrapes race appends).
	maxChainDepth atomic.Int64
	snapshotSteps atomic.Int64
	deltaSteps    atomic.Int64
}

// newTelemetry precomputes the dataset's encoding shape. The delta-chain
// depth is the longest run of consecutive delta records — the worst-case
// number of patches a decode applies on top of a snapshot (always 0 for
// full-format datasets).
func newTelemetry(m *Manifest) *Telemetry {
	t := &Telemetry{}
	t.updateShape(m)
	return t
}

// updateShape recomputes the encoding-shape gauges for a manifest
// generation; Store.publish calls it so a growing dataset's scrape stays
// truthful.
func (t *Telemetry) updateShape(m *Manifest) {
	if t == nil {
		return
	}
	var maxChain, snaps, dsteps int64
	if m.SnapshotEvery > 0 {
		var run int64
		for s := 0; s < m.Timesteps; s++ {
			if m.snapshotStep(s) {
				snaps++
				run = 0
			} else {
				dsteps++
				run++
				if run > maxChain {
					maxChain = run
				}
			}
		}
	} else {
		snaps = int64(m.Timesteps)
	}
	t.maxChainDepth.Store(maxChain)
	t.snapshotSteps.Store(snaps)
	t.deltaSteps.Store(dsteps)
}

// ObservePackDecode records one pack materialization's wall time.
func (t *Telemetry) ObservePackDecode(d time.Duration) {
	if t == nil {
		return
	}
	t.packDecode.observe(d)
}

// ObserveSliceRead records one slice-file read's wall time.
func (t *Telemetry) ObserveSliceRead(d time.Duration) {
	if t == nil {
		return
	}
	t.sliceRead.observe(d)
}

// AddBytesRead accumulates bytes read off disk (pre-decompression).
func (t *Telemetry) AddBytesRead(n int64) {
	if t == nil {
		return
	}
	t.bytesRead.Add(n)
}

// BytesRead returns the cumulative bytes read off disk.
func (t *Telemetry) BytesRead() int64 {
	if t == nil {
		return 0
	}
	return t.bytesRead.Load()
}

// CollectObs implements obs.Collector with the tsgofs_* families.
func (t *Telemetry) CollectObs(emit func(obs.Sample)) {
	t.packDecode.emit(emit, "tsgofs_pack_decode_seconds",
		"Wall time materializing one temporal pack (all slice files decoded and assembled).")
	t.sliceRead.emit(emit, "tsgofs_slice_read_seconds",
		"Wall time reading and decoding one slice file.")
	emit(obs.Sample{Name: "tsgofs_bytes_read_total",
		Help: "Bytes read from slice files (before decompression).",
		Kind: "counter", Value: float64(t.bytesRead.Load())})
	emit(obs.Sample{Name: "tsgofs_delta_chain_depth",
		Help: "Longest run of delta records a decode patches on top of a snapshot (0 = full-format).",
		Kind: "gauge", Value: float64(t.maxChainDepth.Load())})
	emit(obs.Sample{Name: "tsgofs_snapshot_steps",
		Help: "Timesteps stored as full snapshots.",
		Kind: "gauge", Value: float64(t.snapshotSteps.Load())})
	emit(obs.Sample{Name: "tsgofs_delta_steps",
		Help: "Timesteps stored as delta records.",
		Kind: "gauge", Value: float64(t.deltaSteps.Load())})
}

// storageHist is a compact log-2 latency histogram: 20 doubling buckets
// from 16µs (so the last finite bound is ~8.4s — pack decodes on cold
// spinning storage fit), plus overflow. Same shape as obs/live's
// Histogram, duplicated rather than imported to keep gofs free of the
// serving-layer package.
const (
	numStorageBuckets = 20
	baseStorageBucket = 16 * time.Microsecond
)

type storageHist struct {
	counts [numStorageBuckets + 1]atomic.Uint64
	sumNS  atomic.Int64
	count  atomic.Uint64
}

var storageBounds = func() [numStorageBuckets]int64 {
	var b [numStorageBuckets]int64
	bound := int64(baseStorageBucket)
	for i := range b {
		b[i] = bound
		bound *= 2
	}
	return b
}()

func (h *storageHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < numStorageBuckets && ns > storageBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
}

func (h *storageHist) emit(emitFn func(obs.Sample), family, help string) {
	les := make([]float64, numStorageBuckets)
	cum := make([]uint64, numStorageBuckets)
	var running uint64
	for i := 0; i < numStorageBuckets; i++ {
		les[i] = time.Duration(storageBounds[i]).Seconds()
		running += h.counts[i].Load()
		cum[i] = running
	}
	count := running + h.counts[numStorageBuckets].Load()
	obs.EmitHistogram(emitFn, family, help, nil, les, cum,
		time.Duration(h.sumNS.Load()).Seconds(), count)
}

// countingReader counts bytes pulled through it into a Telemetry.
type countingReader struct {
	r io.Reader
	t *Telemetry
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.t.AddBytesRead(int64(n))
	return n, err
}
