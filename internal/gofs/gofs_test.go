package gofs

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// makeDataset builds a small meme+latency dataset and its assignment.
func makeDataset(tb testing.TB, steps, k int) (*graph.Collection, *partition.Assignment) {
	tb.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, RemoveFrac: 0.1, Seed: 3})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: steps, T0: 1000, Delta: 60, Min: 1, Max: 100, Seed: 4})
	if err != nil {
		tb.Fatal(err)
	}
	// Overlay tweets so string lists are exercised.
	res, err := gen.SIRTweets(g, gen.SIRConfig{Timesteps: steps, T0: 1000, Delta: 60, Memes: []string{"#m"}, HitProb: 0.4, Seed: 5})
	if err != nil {
		tb.Fatal(err)
	}
	ti := g.VertexSchema().Index(gen.AttrTweets)
	for s := 0; s < steps; s++ {
		c.Instance(s).VertexCols[ti] = res.Collection.Instance(s).VertexCols[ti]
	}
	a, err := (partition.Multilevel{Seed: 6}).Partition(g, k)
	if err != nil {
		tb.Fatal(err)
	}
	return c, a
}

func collectionsEqual(tb testing.TB, want, got *graph.Collection) {
	tb.Helper()
	if want.NumInstances() != got.NumInstances() {
		tb.Fatalf("instances: want %d, got %d", want.NumInstances(), got.NumInstances())
	}
	g := want.Template
	for s := 0; s < want.NumInstances(); s++ {
		wi, gi := want.Instance(s), got.Instance(s)
		if wi.Time != gi.Time || wi.Timestep != gi.Timestep {
			tb.Fatalf("step %d meta mismatch", s)
		}
		for ci := range wi.VertexCols {
			wc, gc := &wi.VertexCols[ci], &gi.VertexCols[ci]
			switch wc.Type {
			case graph.TFloat:
				for v := range wc.Floats {
					if wc.Floats[v] != gc.Floats[v] {
						tb.Fatalf("step %d vcol %d vertex %d: %v != %v", s, ci, v, wc.Floats[v], gc.Floats[v])
					}
				}
			case graph.TStringList:
				for v := range wc.StringLists {
					if len(wc.StringLists[v]) != len(gc.StringLists[v]) {
						tb.Fatalf("step %d vertex %d list len %d != %d", s, v, len(wc.StringLists[v]), len(gc.StringLists[v]))
					}
					for j := range wc.StringLists[v] {
						if wc.StringLists[v][j] != gc.StringLists[v][j] {
							tb.Fatalf("step %d vertex %d tag %d mismatch", s, v, j)
						}
					}
				}
			}
		}
		for ci := range wi.EdgeCols {
			wc, gc := &wi.EdgeCols[ci], &gi.EdgeCols[ci]
			if wc.Type == graph.TFloat {
				for e := range wc.Floats {
					if wc.Floats[e] != gc.Floats[e] {
						tb.Fatalf("step %d ecol %d edge %d: %v != %v", s, ci, e, wc.Floats[e], gc.Floats[e])
					}
				}
			}
		}
	}
	_ = g
}

func TestWriteOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 12, 3)
	if err := WriteDataset(dir, c, a, 5, 2); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Timesteps() != 12 {
		t.Errorf("Timesteps = %d", s.Timesteps())
	}
	if s.Manifest().Pack != 5 || s.Manifest().Bin != 2 {
		t.Errorf("manifest pack/bin = %d/%d", s.Manifest().Pack, s.Manifest().Bin)
	}
	if s.Template().NumVertices() != c.Template.NumVertices() {
		t.Errorf("template vertices %d != %d", s.Template().NumVertices(), c.Template.NumVertices())
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	collectionsEqual(t, c, got)
	// Assignment survives.
	ra := s.Assignment()
	if ra.K != a.K {
		t.Errorf("assignment K %d != %d", ra.K, a.K)
	}
	for v := range a.Parts {
		if ra.Parts[v] != a.Parts[v] {
			t.Fatalf("assignment differs at %d", v)
		}
	}
}

func TestLoaderPackCaching(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 20, 2)
	if err := WriteDataset(dir, c, a, 10, 5); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(s)
	if _, err := l.Load(0); err != nil {
		t.Fatal(err)
	}
	afterFirst := l.Loads
	if afterFirst == 0 {
		t.Fatal("first load read no slice files")
	}
	// Steps 1..9 are in the same pack: no further reads.
	for step := 1; step < 10; step++ {
		if _, err := l.Load(step); err != nil {
			t.Fatal(err)
		}
	}
	if l.Loads != afterFirst {
		t.Errorf("loads grew within a pack: %d -> %d", afterFirst, l.Loads)
	}
	// Step 10 starts a new pack: reads happen.
	if _, err := l.Load(10); err != nil {
		t.Fatal(err)
	}
	if l.Loads != 2*afterFirst {
		t.Errorf("second pack loads = %d, want %d", l.Loads-afterFirst, afterFirst)
	}
	// Going back also re-reads (only one pack cached).
	if _, err := l.Load(3); err != nil {
		t.Fatal(err)
	}
	if l.Loads != 3*afterFirst {
		t.Errorf("re-load of evicted pack: loads = %d", l.Loads)
	}
}

func TestLoaderRange(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 7, 2)
	if err := WriteDataset(dir, c, a, 3, 2); err != nil {
		t.Fatal(err)
	}
	s, _ := Open(dir)
	l := NewLoader(s)
	if _, err := l.Load(-1); err == nil {
		t.Error("negative timestep should error")
	}
	if _, err := l.Load(7); err == nil {
		t.Error("out-of-range timestep should error")
	}
	// Last, short pack (step 6 alone).
	ins, err := l.Load(6)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Timestep != 6 {
		t.Errorf("Timestep = %d", ins.Timestep)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 4, 2)
	if err := WriteDataset(dir, c, a, 2, 3); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of every slice file; loading must fail
	// with a checksum (or structural) error, never succeed silently.
	slices, err := filepath.Glob(filepath.Join(dir, "slices", "*.slice"))
	if err != nil || len(slices) == 0 {
		t.Fatalf("no slice files found: %v", err)
	}
	data, err := os.ReadFile(slices[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(slices[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAll(); err == nil {
		t.Fatal("corrupted slice loaded without error")
	}
}

func TestCorruptTemplateDetected(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 2, 2)
	if err := WriteDataset(dir, c, a, 2, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "template.gofs")
	data, _ := os.ReadFile(path)
	data[len(data)-10] ^= 0x01
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted template opened without error")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of missing dataset should error")
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 2, 2)
	if err := WriteDataset(dir, c, a, 2, 2); err != nil {
		t.Fatal(err)
	}
	// Swap template and manifest: both reads must fail on magic.
	tp := filepath.Join(dir, "template.gofs")
	mp := filepath.Join(dir, "manifest.gofs")
	td, _ := os.ReadFile(tp)
	md, _ := os.ReadFile(mp)
	os.WriteFile(tp, md, 0o644)
	os.WriteFile(mp, td, 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("swapped files opened without error")
	}
}

// TestSliceRoundTripProperty: random small collections round trip exactly
// through the store for random pack/bin parameters.
func TestSliceRoundTripProperty(t *testing.T) {
	base := t.TempDir()
	iter := 0
	f := func(seed int64, packRaw, binRaw, kRaw uint8) bool {
		iter++
		rng := rand.New(rand.NewSource(seed))
		steps := 1 + rng.Intn(8)
		pack := 1 + int(packRaw)%6
		bin := 1 + int(binRaw)%4
		k := 1 + int(kRaw)%3
		g := gen.SmallWorld(gen.SmallWorldConfig{N: 20 + rng.Intn(30), M: 2, Seed: seed})
		c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: steps, Delta: 10, Min: 0, Max: 9, Seed: seed + 1})
		if err != nil {
			return false
		}
		a, err := (partition.BFSGrow{}).Partition(g, k)
		if err != nil {
			return false
		}
		dir := filepath.Join(base, fmt.Sprintf("ds%d", iter))
		if err := WriteDataset(dir, c, a, pack, bin); err != nil {
			return false
		}
		s, err := Open(dir)
		if err != nil {
			return false
		}
		got, err := s.LoadAll()
		if err != nil {
			return false
		}
		for step := 0; step < steps; step++ {
			w := c.Instance(step).EdgeFloats(g, gen.AttrLatency)
			r := got.Instance(step).EdgeFloats(s.Template(), gen.AttrLatency)
			for e := range w {
				if w[e] != r[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDatasetDefaults(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 3, 2)
	if err := WriteDataset(dir, c, a, 0, 0); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest().Pack != DefaultPack || s.Manifest().Bin != DefaultBin {
		t.Errorf("defaults not applied: pack=%d bin=%d", s.Manifest().Pack, s.Manifest().Bin)
	}
}

func TestWriteDatasetRejectsBadAssignment(t *testing.T) {
	dir := t.TempDir()
	c, _ := makeDataset(t, 2, 2)
	bad := &partition.Assignment{K: 2, Parts: make([]int32, 1)}
	if err := WriteDataset(dir, c, bad, 2, 2); err == nil {
		t.Fatal("bad assignment accepted")
	}
}

func TestTruncatedSliceDetected(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 4, 2)
	if err := WriteDataset(dir, c, a, 2, 3); err != nil {
		t.Fatal(err)
	}
	slices, _ := filepath.Glob(filepath.Join(dir, "slices", "*.slice"))
	data, err := os.ReadFile(slices[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-payload: the loader must fail, not return zeroes.
	if err := os.WriteFile(slices[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAll(); err == nil {
		t.Fatal("truncated slice loaded without error")
	}
}

func TestTruncatedManifestDetected(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 2, 2)
	if err := WriteDataset(dir, c, a, 2, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "manifest.gofs")
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-6], 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated manifest opened without error")
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 10, 2)
	if err := WriteDatasetOptions(dir, c, a, Options{Pack: 5, Bin: 3, Compress: true}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Manifest().Compress {
		t.Fatal("compress flag lost")
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	collectionsEqual(t, c, got)
}

func TestCompressedCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 4, 2)
	if err := WriteDatasetOptions(dir, c, a, Options{Pack: 2, Bin: 2, Compress: true}); err != nil {
		t.Fatal(err)
	}
	slices, _ := filepath.Glob(filepath.Join(dir, "slices", "*.slice"))
	data, _ := os.ReadFile(slices[0])
	data[len(data)/2] ^= 0xFF
	os.WriteFile(slices[0], data, 0o644)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAll(); err == nil {
		t.Fatal("corrupted compressed slice loaded without error")
	}
}

// TestCompressionShrinksSparseData: tweet-style sparse columns compress
// substantially; the manifest records which mode the dataset uses.
func TestCompressionShrinksSparseData(t *testing.T) {
	c, a := makeDataset(t, 10, 2)
	size := func(compress bool) int64 {
		dir := t.TempDir()
		if err := WriteDatasetOptions(dir, c, a, Options{Pack: 10, Bin: 5, Compress: compress}); err != nil {
			t.Fatal(err)
		}
		var total int64
		slices, _ := filepath.Glob(filepath.Join(dir, "slices", "*.slice"))
		for _, p := range slices {
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		return total
	}
	raw := size(false)
	gz := size(true)
	if gz >= raw {
		t.Errorf("compression did not shrink sparse dataset: %d -> %d bytes", raw, gz)
	}
}
