package gofs

import (
	"sync"
	"testing"
)

func TestInstanceCacheServesSameData(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 12, 3)
	if err := WriteDataset(dir, c, a, 4, 2); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewInstanceCache(s, 2)
	if cache.Timesteps() != 12 {
		t.Fatalf("Timesteps = %d, want 12", cache.Timesteps())
	}
	want, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 12; step++ {
		ins, err := cache.Load(step)
		if err != nil {
			t.Fatalf("Load(%d): %v", step, err)
		}
		w := want.Instance(step)
		if ins.Timestep != w.Timestep || ins.Time != w.Time {
			t.Fatalf("step %d meta mismatch", step)
		}
		for ci := range w.EdgeCols {
			for e := range w.EdgeCols[ci].Floats {
				if ins.EdgeCols[ci].Floats[e] != w.EdgeCols[ci].Floats[e] {
					t.Fatalf("step %d edge col %d slot %d differs", step, ci, e)
				}
			}
		}
	}
	if _, err := cache.Load(12); err == nil {
		t.Error("out-of-range Load accepted")
	}
}

func TestInstanceCacheLRUAndStats(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 12, 2)
	if err := WriteDataset(dir, c, a, 4, 2); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewInstanceCache(s, 2) // packs: [0,4) [4,8) [8,12)

	// Warm packs 0 and 1.
	for _, step := range []int{0, 4} {
		if _, err := cache.Load(step); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Misses != 2 || st.PackLoads != 2 || st.Resident != 2 || st.Evictions != 0 {
		t.Fatalf("after warmup: %+v", st)
	}

	// Hits within resident packs decode nothing.
	for _, step := range []int{1, 2, 5, 7} {
		if _, err := cache.Load(step); err != nil {
			t.Fatal(err)
		}
	}
	st = cache.Stats()
	if st.Hits != 4 || st.PackLoads != 2 {
		t.Fatalf("after hits: %+v", st)
	}

	// Touch pack 0 so pack 1 is the LRU victim, then load pack 2.
	if _, err := cache.Load(3); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Load(8); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Evictions != 1 || st.Resident != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	// Pack 0 stayed resident; pack 1 was evicted.
	if _, err := cache.Load(0); err != nil {
		t.Fatal(err)
	}
	hitsBefore := cache.Stats().Hits
	if _, err := cache.Load(4); err != nil { // evicted: a miss again
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Hits != hitsBefore {
		t.Fatalf("evicted pack served as hit: %+v", st)
	}
	if st.DecodeTime <= 0 {
		t.Errorf("DecodeTime not accounted: %+v", st)
	}
}

func TestInstanceCacheByteAccounting(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 12, 2)
	if err := WriteDatasetOptions(dir, c, a, Options{Pack: 4, Bin: 2, SnapshotEvery: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Measure one pack's decoded size, then budget for exactly two packs:
	// packs are charged by what they decode to, not by their count, so a
	// delta-chained pack (tiny on disk, full-size in memory) still counts.
	probe := NewInstanceCacheBytes(s, 1)
	if _, err := probe.Load(0); err != nil {
		t.Fatal(err)
	}
	packBytes := probe.Stats().BytesResident
	if packBytes <= 0 {
		t.Fatalf("BytesResident = %d after a decode", packBytes)
	}

	cache := NewInstanceCacheBytes(s, 2*packBytes+packBytes/2)
	if st := cache.Stats(); st.BytesLimit != 2*packBytes+packBytes/2 {
		t.Fatalf("BytesLimit = %d", st.BytesLimit)
	}
	for _, step := range []int{0, 4} {
		if _, err := cache.Load(step); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Resident != 2 || st.Evictions != 0 {
		t.Fatalf("two packs should fit the byte budget: %+v", st)
	}
	if st.BytesResident < 2*packBytes-packBytes/2 {
		t.Fatalf("BytesResident = %d, expected about %d", st.BytesResident, 2*packBytes)
	}
	// A third pack exceeds the budget and must evict the LRU one.
	if _, err := cache.Load(8); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Evictions != 1 || st.Resident != 2 {
		t.Fatalf("after third pack: %+v", st)
	}
	if st.BytesResident > st.BytesLimit {
		t.Fatalf("BytesResident %d over budget %d", st.BytesResident, st.BytesLimit)
	}
	// Delta materialization counters: pack starts are snapshots, the other
	// 9 of 12 timesteps were patched forward.
	if st.SnapshotSteps != 3 || st.DeltaSteps != 9 {
		t.Fatalf("step-kind counters: %+v", st)
	}
	// The change summary is available for resident packs.
	if cache.Delta(9) == nil {
		t.Fatal("Delta(9) = nil for resident delta pack")
	}
	if cache.Delta(0) != nil {
		t.Fatal("Delta(0) should be nil (no predecessor)")
	}
}

func TestInstanceCacheSingleFlight(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 8, 2)
	if err := WriteDataset(dir, c, a, 8, 2); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewInstanceCache(s, 1)
	// Many goroutines race onto the same cold pack; exactly one decode may
	// happen (single-flight), everyone gets the same instances.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(step int) {
			defer wg.Done()
			if _, err := cache.Load(step); err != nil {
				t.Error(err)
			}
		}(i % 8)
	}
	wg.Wait()
	st := cache.Stats()
	if st.PackLoads != 1 {
		t.Fatalf("single-flight broken: %d pack decodes, want 1 (%+v)", st.PackLoads, st)
	}
	if st.Hits+st.Misses != 16 || st.Misses != 1 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
}
