package gofs

import (
	"strings"
	"testing"

	"tsgraph/internal/obs"
)

// TestTelemetryObservesReads: reading slices through the store populates
// the pack-decode and slice-read histograms plus the bytes-read counter,
// and the scrape exposes them with the manifest's chain-depth gauges.
func TestTelemetryObservesReads(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 12, 3)
	if err := WriteDataset(dir, c, a, 4, 2); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tel := s.Telemetry()
	if tel == nil {
		t.Fatal("store has no telemetry")
	}
	if _, err := s.LoadAll(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry(nil)
	reg.Register(tel)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, family := range []string{
		"tsgofs_pack_decode_seconds_bucket",
		"tsgofs_pack_decode_seconds_count",
		"tsgofs_slice_read_seconds_count",
		"tsgofs_bytes_read_total",
		"tsgofs_delta_chain_depth",
		"tsgofs_snapshot_steps",
		"tsgofs_delta_steps",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("scrape missing %s", family)
		}
	}
	if tel.bytesRead.Load() <= 0 {
		t.Fatal("bytes-read counter did not advance")
	}
	if n := tel.sliceRead.count.Load(); n == 0 {
		t.Fatal("slice-read histogram observed nothing")
	}
	if n := tel.packDecode.count.Load(); n == 0 {
		t.Fatal("pack-decode histogram observed nothing")
	}
}

// TestTelemetryDeltaChain: a delta-encoded dataset reports its longest
// consecutive-delta run and the snapshot/delta step split.
func TestTelemetryDeltaChain(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 12, 2)
	if err := WriteDatasetOptions(dir, c, a, Options{Pack: 6, Bin: 2, SnapshotEvery: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tel := s.Telemetry()
	// Steps 0..11, snapshots at pack boundaries (0,6) and every 4th (0,4,8):
	// snapshots {0,4,6,8}, deltas elsewhere — longest run is 3 (9,10,11).
	if got := tel.maxChainDepth.Load(); got != 3 {
		t.Fatalf("maxChainDepth = %d, want 3", got)
	}
	if tel.snapshotSteps.Load() != 4 || tel.deltaSteps.Load() != 8 {
		t.Fatalf("snapshot/delta split = %d/%d, want 4/8", tel.snapshotSteps.Load(), tel.deltaSteps.Load())
	}
}

// TestClassCacheAttribution: loads through ClassSource wrappers attribute
// pack hits and misses to the issuing query class.
func TestClassCacheAttribution(t *testing.T) {
	dir := t.TempDir()
	c, a := makeDataset(t, 8, 2)
	if err := WriteDataset(dir, c, a, 4, 2); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewInstanceCache(s, 2)
	tdsp := cache.ClassSource("tdsp")
	topn := cache.ClassSource("topn")
	if tdsp.Timesteps() != 8 {
		t.Fatalf("Timesteps = %d", tdsp.Timesteps())
	}

	if _, err := tdsp.Load(0); err != nil { // pack 0: miss
		t.Fatal(err)
	}
	if _, err := tdsp.Load(1); err != nil { // pack 0: hit
		t.Fatal(err)
	}
	if _, err := topn.Load(2); err != nil { // pack 0: hit
		t.Fatal(err)
	}
	if _, err := topn.Load(4); err != nil { // pack 1: miss
		t.Fatal(err)
	}

	st := cache.Stats()
	if got := st.ByClass["tdsp"]; got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("tdsp attribution = %+v", got)
	}
	if got := st.ByClass["topn"]; got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("topn attribution = %+v", got)
	}
	// Unattributed loads (plain cache.Load) must not invent a class.
	if _, err := cache.Load(5); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if len(st.ByClass) != 2 {
		t.Fatalf("ByClass grew to %v", st.ByClass)
	}
}
