package gofs

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"tsgraph/internal/chaos"
	"tsgraph/internal/graph"
)

// CacheStats is a point-in-time snapshot of an InstanceCache's counters.
type CacheStats struct {
	// Hits counts Loads served from a resident (or in-flight) pack. A
	// request that joins a decode another goroutine already started counts
	// as a hit: it paid a wait, not a decode.
	Hits uint64
	// Misses counts Loads that had to start a pack decode.
	Misses uint64
	// Evictions counts packs dropped to respect the capacity bound.
	Evictions uint64
	// PackLoads counts completed pack decodes (== Misses minus failures).
	PackLoads uint64
	// Resident is the number of packs currently held (including in-flight).
	Resident int
	// DecodeTime accumulates wall time spent decoding packs.
	DecodeTime time.Duration
}

// cachedPack is one pack's cache entry. ready is closed once the decode
// finished; until then instances/err must not be read.
type cachedPack struct {
	start     int
	ready     chan struct{}
	instances []*graph.Instance
	err       error
	elem      *list.Element
}

// InstanceCache is a bounded, thread-safe LRU of decoded packs over a
// Store — the lower tier of the serving layer's two-tier cache. Unlike
// Loader (one resident pack, single goroutine), it keeps up to maxPacks
// packs resident and is safe for concurrent TI-BSP sweeps: a miss decodes
// the pack once while concurrent readers of the same pack wait for that
// decode (per-pack single-flight) instead of duplicating it. Decoded
// instances are shared read-only, which is exactly how the engine consumes
// them.
type InstanceCache struct {
	store    *Store
	maxPacks int
	// Chaos, when non-nil, arms the gofs.load failpoint on pack decodes.
	Chaos *chaos.Injector

	mu         sync.Mutex
	packs      map[int]*cachedPack
	lru        *list.List // front = most recently used *cachedPack
	hits       uint64
	misses     uint64
	evictions  uint64
	packLoads  uint64
	decodeTime time.Duration
}

// NewInstanceCache creates a cache holding up to maxPacks decoded packs
// (minimum 1) over an open store.
func NewInstanceCache(s *Store, maxPacks int) *InstanceCache {
	if maxPacks < 1 {
		maxPacks = 1
	}
	return &InstanceCache{
		store:    s,
		maxPacks: maxPacks,
		packs:    make(map[int]*cachedPack),
		lru:      list.New(),
	}
}

// Timesteps implements core.InstanceSource.
func (c *InstanceCache) Timesteps() int { return c.store.manifest.Timesteps }

// Load implements core.InstanceSource. Safe for concurrent use.
func (c *InstanceCache) Load(timestep int) (*graph.Instance, error) {
	m := c.store.manifest
	if timestep < 0 || timestep >= m.Timesteps {
		return nil, fmt.Errorf("gofs: timestep %d outside [0,%d)", timestep, m.Timesteps)
	}
	ps := (timestep / m.Pack) * m.Pack

	c.mu.Lock()
	if e := c.packs[ps]; e != nil {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return packInstance(e, timestep)
	}
	c.misses++
	e := &cachedPack{start: ps, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.packs[ps] = e
	c.evictLocked()
	c.mu.Unlock()

	decodeStart := time.Now()
	instances, _, err := c.store.ReadPack(ps, c.Chaos)
	dur := time.Since(decodeStart)

	c.mu.Lock()
	e.instances, e.err = instances, err
	c.decodeTime += dur
	if err != nil {
		// Failed decodes are not cached; the next request retries.
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		delete(c.packs, ps)
	} else {
		c.packLoads++
	}
	c.mu.Unlock()
	close(e.ready)

	if err != nil {
		return nil, err
	}
	return packInstance(e, timestep)
}

// evictLocked drops least-recently-used fully-decoded packs beyond
// capacity. In-flight decodes are never evicted, so the cache can
// transiently exceed maxPacks while several cold packs decode concurrently.
func (c *InstanceCache) evictLocked() {
	for c.lru.Len() > c.maxPacks {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cachedPack)
			select {
			case <-e.ready:
			default:
				continue // still decoding
			}
			c.lru.Remove(el)
			e.elem = nil
			delete(c.packs, e.start)
			c.evictions++
			evicted = true
			break
		}
		if !evicted {
			return // everything over capacity is in flight
		}
	}
}

// Stats snapshots the cache counters.
func (c *InstanceCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		PackLoads:  c.packLoads,
		Resident:   c.lru.Len(),
		DecodeTime: c.decodeTime,
	}
}

func packInstance(e *cachedPack, timestep int) (*graph.Instance, error) {
	ins := e.instances[timestep-e.start]
	if ins == nil {
		return nil, fmt.Errorf("gofs: timestep %d missing from pack %d", timestep, e.start)
	}
	return ins, nil
}
