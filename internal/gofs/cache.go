package gofs

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"tsgraph/internal/chaos"
	"tsgraph/internal/graph"
)

// CacheStats is a point-in-time snapshot of an InstanceCache's counters.
type CacheStats struct {
	// Hits counts Loads served from a resident (or in-flight) pack. A
	// request that joins a decode another goroutine already started counts
	// as a hit: it paid a wait, not a decode.
	Hits uint64
	// Misses counts Loads that had to start a pack decode.
	Misses uint64
	// Evictions counts packs dropped to respect the capacity bound.
	Evictions uint64
	// PackLoads counts completed pack decodes (== Misses minus failures).
	PackLoads uint64
	// Resident is the number of packs currently held (including in-flight).
	Resident int
	// DecodeTime accumulates wall time spent decoding packs.
	DecodeTime time.Duration
	// BytesResident is the decoded size of all resident packs (in-flight
	// decodes are charged once they complete).
	BytesResident int64
	// BytesLimit is the byte budget when the cache is byte-bounded
	// (NewInstanceCacheBytes), 0 in pack-count mode.
	BytesLimit int64
	// SnapshotSteps counts timesteps materialized from full snapshot
	// records; DeltaSteps counts timesteps materialized by patching the
	// previous timestep (always 0 on full-format datasets).
	SnapshotSteps uint64
	DeltaSteps    uint64
	// ByClass attributes hits/misses to query classes for loads issued
	// through ClassSource wrappers (nil when no wrapper is in use).
	ByClass map[string]ClassCacheStats
}

// ClassCacheStats is one query class's share of the cache traffic.
type ClassCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// cachedPack is one pack's cache entry. ready is closed once the decode
// finished; until then instances/deltas/err must not be read.
type cachedPack struct {
	start     int
	ready     chan struct{}
	instances []*graph.Instance
	deltas    []*graph.Delta
	bytes     int64
	err       error
	elem      *list.Element
}

// InstanceCache is a bounded, thread-safe LRU of decoded packs over a
// Store — the lower tier of the serving layer's two-tier cache. Unlike
// Loader (one resident pack, single goroutine), it keeps multiple packs
// resident and is safe for concurrent TI-BSP sweeps: a miss decodes
// the pack once while concurrent readers of the same pack wait for that
// decode (per-pack single-flight) instead of duplicating it. Decoded
// instances are shared read-only, which is exactly how the engine consumes
// them.
//
// Two capacity modes exist: a pack-count bound (NewInstanceCache) and a
// decoded-byte bound (NewInstanceCacheBytes). The byte bound is the right
// one for delta-encoded datasets, where pack sizes on disk say little about
// materialized size: every pack decodes to full instances regardless of how
// it was stored, so the count of packs under-specifies memory exactly when
// delta chains make packs cheap to store.
type InstanceCache struct {
	store    *Store
	maxPacks int   // > 0: bound on resident pack count
	maxBytes int64 // > 0: bound on resident decoded bytes
	// Chaos, when non-nil, arms the gofs.load failpoint on pack decodes.
	Chaos *chaos.Injector
	// want, when non-nil, restricts pack decodes to these partitions (see
	// Restrict).
	want []bool

	mu            sync.Mutex
	packs         map[int]*cachedPack
	lru           *list.List // front = most recently used *cachedPack
	bytes         int64
	byClass       map[string]*ClassCacheStats
	hits          uint64
	misses        uint64
	evictions     uint64
	packLoads     uint64
	snapshotSteps uint64
	deltaSteps    uint64
	decodeTime    time.Duration
}

// NewInstanceCache creates a cache holding up to maxPacks decoded packs
// (minimum 1) over an open store.
func NewInstanceCache(s *Store, maxPacks int) *InstanceCache {
	if maxPacks < 1 {
		maxPacks = 1
	}
	return &InstanceCache{
		store:    s,
		maxPacks: maxPacks,
		packs:    make(map[int]*cachedPack),
		lru:      list.New(),
	}
}

// NewInstanceCacheBytes creates a cache bounded by the decoded in-memory
// size of its resident packs rather than their count. The most recently
// used pack is always kept, even when it alone exceeds the budget.
func NewInstanceCacheBytes(s *Store, maxBytes int64) *InstanceCache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &InstanceCache{
		store:    s,
		maxBytes: maxBytes,
		packs:    make(map[int]*cachedPack),
		lru:      list.New(),
	}
}

// Restrict limits every subsequent pack decode to the named partitions:
// slice files of other partitions are never read, and their columns stay
// zero in the decoded instances. A shard rank calls this once, before any
// load, with its owned partitions — reads outside them would silently see
// zeros, which is exactly the contract (the rank's sweeps only touch its
// own partitions). Not safe to call concurrently with loads.
func (c *InstanceCache) Restrict(parts []int) {
	want := make([]bool, c.store.m().K)
	for _, p := range parts {
		if p >= 0 && p < len(want) {
			want[p] = true
		}
	}
	c.want = want
}

// Timesteps implements core.InstanceSource.
func (c *InstanceCache) Timesteps() int { return c.store.Timesteps() }

// Load implements core.InstanceSource. Safe for concurrent use.
func (c *InstanceCache) Load(timestep int) (*graph.Instance, error) {
	return c.load(timestep, "")
}

// classStatsLocked returns (allocating if needed) a class's counters.
func (c *InstanceCache) classStatsLocked(class string) *ClassCacheStats {
	if c.byClass == nil {
		c.byClass = make(map[string]*ClassCacheStats)
	}
	st := c.byClass[class]
	if st == nil {
		st = &ClassCacheStats{}
		c.byClass[class] = st
	}
	return st
}

// load is Load with optional query-class attribution ("" = unattributed).
func (c *InstanceCache) load(timestep int, class string) (*graph.Instance, error) {
	m := c.store.m()
	if timestep < 0 || timestep >= m.Timesteps {
		return nil, fmt.Errorf("gofs: timestep %d outside [0,%d)", timestep, m.Timesteps)
	}
	ps := (timestep / m.Pack) * m.Pack

	c.mu.Lock()
	if e := c.packs[ps]; e != nil {
		c.lru.MoveToFront(e.elem)
		c.hits++
		if class != "" {
			c.classStatsLocked(class).Hits++
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		if timestep-ps < len(e.instances) {
			return packInstance(e, timestep)
		}
		// Stale tail-pack decode on a live dataset: the entry was decoded
		// when the pack held fewer timesteps than the manifest now
		// advertises. Drop it (if it is still the mapped entry) and
		// re-decode — the fresh read covers the requested timestep because
		// the bounds check above already passed against a newer manifest.
		c.mu.Lock()
		if cur := c.packs[ps]; cur == e {
			c.lru.Remove(e.elem)
			e.elem = nil
			delete(c.packs, ps)
			c.bytes -= e.bytes
			c.evictions++
		}
		c.mu.Unlock()
		return c.load(timestep, class)
	}
	c.misses++
	if class != "" {
		c.classStatsLocked(class).Misses++
	}
	e := &cachedPack{start: ps, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.packs[ps] = e
	c.evictLocked()
	c.mu.Unlock()

	decodeStart := time.Now()
	instances, deltas, _, err := c.store.ReadPackDeltasParts(ps, c.Chaos, c.want)
	dur := time.Since(decodeStart)
	var bytes int64
	for _, ins := range instances {
		bytes += instanceBytes(ins)
	}

	c.mu.Lock()
	e.instances, e.deltas, e.err = instances, deltas, err
	c.decodeTime += dur
	if err != nil {
		// Failed decodes are not cached; the next request retries.
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		delete(c.packs, ps)
	} else {
		c.packLoads++
		e.bytes = bytes
		c.bytes += bytes
		snaps, dsteps := m.packStepKinds(ps, len(instances))
		c.snapshotSteps += uint64(snaps)
		c.deltaSteps += uint64(dsteps)
		// Bytes become known only now; the byte bound is enforced here
		// (in-flight entries are never evicted, so this entry is still
		// resident and charged).
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)

	if err != nil {
		return nil, err
	}
	return packInstance(e, timestep)
}

// Delta returns the change summary leading into a timestep if its pack is
// resident (waiting for an in-flight decode), nil otherwise. nil also covers
// full-format datasets and the collection's first timestep — callers must
// then assume everything changed.
func (c *InstanceCache) Delta(timestep int) *graph.Delta {
	m := c.store.m()
	if timestep < 0 || timestep >= m.Timesteps {
		return nil
	}
	ps := (timestep / m.Pack) * m.Pack
	c.mu.Lock()
	e := c.packs[ps]
	c.mu.Unlock()
	if e == nil {
		return nil
	}
	<-e.ready
	// A stale tail-pack decode (live dataset, entry shorter than the pack
	// is now) reports nil — unknown — rather than indexing out of range;
	// callers already treat nil as "assume everything changed".
	if e.err != nil || e.deltas == nil || timestep-ps >= len(e.deltas) {
		return nil
	}
	return e.deltas[timestep-ps]
}

// overLocked reports whether the active capacity bound is exceeded. The
// byte bound never counts the cache down below one resident pack.
func (c *InstanceCache) overLocked() bool {
	if c.maxPacks > 0 && c.lru.Len() > c.maxPacks {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1
}

// evictLocked drops least-recently-used fully-decoded packs beyond
// capacity. In-flight decodes are never evicted, so the cache can
// transiently exceed its bound while several cold packs decode concurrently.
func (c *InstanceCache) evictLocked() {
	for c.overLocked() {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cachedPack)
			select {
			case <-e.ready:
			default:
				continue // still decoding
			}
			c.lru.Remove(el)
			e.elem = nil
			delete(c.packs, e.start)
			c.bytes -= e.bytes
			c.evictions++
			evicted = true
			break
		}
		if !evicted {
			return // everything over capacity is in flight
		}
	}
}

// ClassSource returns a view of the cache that attributes its cache
// traffic to a query class — the serving layer hands each class's sweeps
// a distinct view so /stats and /metrics can show which class's access
// pattern is thrashing the cache. All views share the cache.
func (c *InstanceCache) ClassSource(class string) *ClassCacheSource {
	return &ClassCacheSource{cache: c, class: class}
}

// ClassCacheSource is a class-attributed InstanceSource over a shared
// InstanceCache.
type ClassCacheSource struct {
	cache *InstanceCache
	class string
}

// Timesteps implements core.InstanceSource.
func (s *ClassCacheSource) Timesteps() int { return s.cache.Timesteps() }

// Load implements core.InstanceSource.
func (s *ClassCacheSource) Load(timestep int) (*graph.Instance, error) {
	return s.cache.load(timestep, s.class)
}

// Stats snapshots the cache counters.
func (c *InstanceCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var byClass map[string]ClassCacheStats
	if len(c.byClass) > 0 {
		byClass = make(map[string]ClassCacheStats, len(c.byClass))
		for k, v := range c.byClass {
			byClass[k] = *v
		}
	}
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		PackLoads:     c.packLoads,
		Resident:      c.lru.Len(),
		DecodeTime:    c.decodeTime,
		BytesResident: c.bytes,
		BytesLimit:    c.maxBytes,
		SnapshotSteps: c.snapshotSteps,
		DeltaSteps:    c.deltaSteps,
		ByClass:       byClass,
	}
}

// instanceBytes estimates the decoded in-memory footprint of one instance:
// 8 bytes per int/float, 1 per bool, header plus content for strings and
// string lists. Delta-chained packs alias unchanged string content between
// consecutive timesteps, so this logical size is a safe upper bound on the
// pack's real footprint.
func instanceBytes(ins *graph.Instance) int64 {
	var n int64
	cols := func(cs []graph.Column) {
		for i := range cs {
			c := &cs[i]
			switch c.Type {
			case graph.TInt:
				n += 8 * int64(len(c.Ints))
			case graph.TFloat:
				n += 8 * int64(len(c.Floats))
			case graph.TBool:
				n += int64(len(c.Bools))
			case graph.TString:
				for _, s := range c.Strings {
					n += 16 + int64(len(s))
				}
			case graph.TStringList:
				for _, l := range c.StringLists {
					n += 24
					for _, s := range l {
						n += 16 + int64(len(s))
					}
				}
			}
		}
	}
	cols(ins.VertexCols)
	cols(ins.EdgeCols)
	return n
}

func packInstance(e *cachedPack, timestep int) (*graph.Instance, error) {
	ins := e.instances[timestep-e.start]
	if ins == nil {
		return nil, fmt.Errorf("gofs: timestep %d missing from pack %d", timestep, e.start)
	}
	return ins, nil
}
