package gofs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Write-ahead log for live ingestion. Each record is an opaque payload
// framed like the other GoFS files — magic, version, length, trailing
// CRC-32 — but framed per record rather than per file, because a WAL is by
// construction a file whose final record may be torn by a crash: replay
// must recover the longest valid prefix and discard the rest, never fail
// on it.
//
// Record layout (all little-endian):
//
//	u32 magic  "GoWL"
//	u32 version
//	u64 payload length
//	payload bytes
//	u32 CRC-32 (IEEE) over header+payload
const (
	walMagic   = 0x476F574C // "GoWL"
	walVersion = 1
	// walHeaderLen is the fixed frame prefix; walFrameOverhead adds the CRC.
	walHeaderLen     = 16
	walFrameOverhead = walHeaderLen + 4
	// maxWALRecord bounds a single payload so a corrupt length field cannot
	// drive a giant allocation during replay.
	maxWALRecord = 64 << 20

	// WALName is the conventional WAL file name inside a dataset directory.
	WALName = "ingest.wal"
)

// WAL is an append-only record log with group commit: writers Stage records
// (buffered write, no fsync) and then Sync them, and concurrent Syncs
// coalesce into one fsync — the first waiter becomes the group leader,
// syncs the file once, and releases everyone whose record that fsync
// covered. Append is the durable one-shot composition of the two. Safe for
// concurrent use.
type WAL struct {
	path string
	// OnFsync, when set, observes each real fsync's wall time (the ingest
	// tier's WAL latency histogram hangs off this). One group commit
	// reports one fsync however many records it covered.
	OnFsync func(time.Duration)
	// GroupWindow, when positive, holds a group leader's fsync open this
	// long so concurrent stagers can join the group. Zero still group-
	// commits naturally: stagers arriving while a leader's fsync is in
	// flight are covered together by the next one.
	GroupWindow time.Duration

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	size int64
	recs int
	// staged is the sequence of the last record written into the file;
	// synced is the highest sequence a completed fsync covers. A record is
	// durable once synced >= its sequence.
	staged int64
	synced int64
	// syncing marks a leader's fsync in flight; Reset waits it out so the
	// file handle is never swapped under an fsync.
	syncing bool
	fsyncs  int64
	// err is sticky after a failed write or fsync: the file offset may sit
	// mid-frame, so the log refuses further use until Reset rebuilds it.
	err error
}

// ReplayWAL reads every complete, checksummed record from a WAL file and
// returns the payloads plus the byte offset where the valid prefix ends. A
// missing file replays to nothing. Torn or corrupt trailing bytes are not
// an error — they are the expected shape of a crash — so replay stops at
// the first record that fails to parse and reports the prefix before it.
func ReplayWAL(path string) (payloads [][]byte, validSize int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	for {
		payload, next, ok := parseWALRecord(data, off)
		if !ok {
			return payloads, off, nil
		}
		payloads = append(payloads, payload)
		off = next
	}
}

// parseWALRecord parses one record at off; ok=false means the bytes from
// off onward do not form a complete valid record (torn tail, corruption,
// or clean end of log).
func parseWALRecord(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+walHeaderLen > int64(len(data)) {
		return nil, 0, false
	}
	h := data[off : off+walHeaderLen]
	if binary.LittleEndian.Uint32(h[0:4]) != walMagic {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(h[4:8]) != walVersion {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint64(h[8:16])
	if n > maxWALRecord {
		return nil, 0, false
	}
	end := off + walHeaderLen + int64(n) + 4
	if end > int64(len(data)) {
		return nil, 0, false
	}
	body := data[off+walHeaderLen : off+walHeaderLen+int64(n)]
	want := binary.LittleEndian.Uint32(data[end-4 : end])
	if crc32.ChecksumIEEE(data[off:end-4]) != want {
		return nil, 0, false
	}
	// Copy out of the mapped file buffer so callers own their payloads.
	payload = append([]byte(nil), body...)
	return payload, end, true
}

// appendWALRecord frames one payload into buf.
func appendWALRecord(buf []byte, payload []byte) []byte {
	start := len(buf)
	var h [walHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], walMagic)
	binary.LittleEndian.PutUint32(h[4:8], walVersion)
	binary.LittleEndian.PutUint64(h[8:16], uint64(len(payload)))
	buf = append(buf, h[:]...)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], crc)
	return append(buf, c[:]...)
}

// OpenWAL replays an existing log (tolerating a torn tail, which it
// truncates away) and opens it for appending. The returned payloads are
// the recovered records in append order.
func OpenWAL(path string) (*WAL, [][]byte, error) {
	payloads, validSize, err := ReplayWAL(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("gofs: truncating torn WAL tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{path: path, f: f, size: validSize, recs: len(payloads)}
	w.cond = sync.NewCond(&w.mu)
	return w, payloads, nil
}

// Stage frames and writes one payload into the log without forcing it to
// disk, returning the record's sequence for a later Sync. Writers are
// serialized internally, so sequence order equals file order. A staged
// record is durable only after a Sync at or beyond its sequence returns.
func (w *WAL) Stage(payload []byte) (seq int64, err error) {
	if int64(len(payload)) > maxWALRecord {
		return 0, fmt.Errorf("gofs: WAL payload %d bytes exceeds limit %d", len(payload), maxWALRecord)
	}
	frame := appendWALRecord(make([]byte, 0, len(payload)+walFrameOverhead), payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, fmt.Errorf("gofs: WAL unusable after earlier failure: %w", w.err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = err
		w.cond.Broadcast()
		return 0, err
	}
	w.size += int64(len(frame))
	w.recs++
	w.staged++
	return w.staged, nil
}

// Sync blocks until a completed fsync covers seq. Concurrent callers form a
// commit group: one becomes the leader and fsyncs once for every record
// staged by the time it runs, the rest just wait for that fsync (or a later
// one) to cover their sequence. A Reset supersedes outstanding records, so
// pending Syncs then return nil — the caller declared those records covered
// elsewhere.
func (w *WAL) Sync(seq int64) error {
	w.mu.Lock()
	for {
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return fmt.Errorf("gofs: WAL sync: %w", err)
		}
		if w.synced >= seq {
			w.mu.Unlock()
			return nil
		}
		if !w.syncing {
			break
		}
		w.cond.Wait()
	}
	// Leader: sync everything staged so far in one fsync.
	w.syncing = true
	if w.GroupWindow > 0 {
		w.mu.Unlock()
		time.Sleep(w.GroupWindow)
		w.mu.Lock()
	}
	target := w.staged
	f := w.f
	w.mu.Unlock()

	syncStart := time.Now()
	err := f.Sync()
	dur := time.Since(syncStart)

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else {
		w.fsyncs++
		if target > w.synced {
			w.synced = target
		}
	}
	w.cond.Broadcast()
	stickyErr := w.err
	covered := w.synced >= seq
	w.mu.Unlock()

	if err == nil && w.OnFsync != nil {
		w.OnFsync(dur)
	}
	if stickyErr != nil && !covered {
		return fmt.Errorf("gofs: WAL sync: %w", stickyErr)
	}
	return nil
}

// Append durably logs one payload: Stage plus Sync. On error the WAL is
// unusable for further appends (the file offset may be mid-frame) until
// Reset rebuilds it — replay will discard any torn record.
func (w *WAL) Append(payload []byte) error {
	seq, err := w.Stage(payload)
	if err != nil {
		return err
	}
	return w.Sync(seq)
}

// Reset atomically replaces the log's contents (temp+fsync+rename, the
// checkpoint machinery's pattern) — used to drop records that are now
// covered by published packs. Pass nil to empty the log. Reset waits out
// any in-flight group fsync, then marks every previously staged record
// synced: outstanding Sync calls return nil, because the caller of Reset
// has declared those records superseded by durable state elsewhere. Reset
// also clears a sticky write/fsync error (the broken bytes are gone).
func (w *WAL) Reset(payloads [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal_*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("gofs: resetting WAL: %w", err)
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendWALRecord(buf, p)
	}
	if len(buf) > 0 {
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: resetting WAL: %w", err)
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: resetting WAL: %w", err)
	}
	old := w.f
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	old.Close()
	w.f = f
	w.size = int64(len(buf))
	w.recs = len(payloads)
	w.synced = w.staged
	w.err = nil
	w.cond.Broadcast()
	return nil
}

// Size returns the log's current valid byte length.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records returns how many records the log currently holds.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recs
}

// Fsyncs returns how many fsyncs the log has performed — with group commit
// under concurrent writers this is less than the records appended, and the
// ratio is the amortization group commit buys.
func (w *WAL) Fsyncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fsyncs
}

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
