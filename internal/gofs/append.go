package gofs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// Appender grows an open dataset one timestep at a time, producing the same
// bytes WriteDataset would have produced for the grown prefix: the tail
// pack is re-encoded through the shared slicePayload encoder on every
// append and published under a length-suffixed part name (complete packs
// take over the plain name), then the manifest generation is swapped
// atomically. Readers holding an older generation keep a consistent view —
// their files are never rewritten, only superseded.
//
// An Appender is single-writer: callers serialize Append themselves (the
// ingest layer holds one mutex across WAL append + fold + publish). It is
// safe against any number of concurrent readers of the same Store.
type Appender struct {
	store *Store
	bins  [][]binInfo // [partition][bin]

	// Tail-pack state. prev is the head instance (nil on an empty
	// dataset); tail covers the current, possibly partial, pack.
	prev *graph.Instance
	tail []*graph.Instance
	// Per tail step, the global dirty masks vs. the previous timestep
	// (nil at the collection's first timestep). Only kept for
	// delta-encoded datasets.
	tailVD, tailED [][]bool
}

type binInfo struct {
	verts, edges []int32
}

// NewAppender opens an append session on a store, rebuilding the bin
// layout from the manifest's assignment and rehydrating the tail pack so
// the first live append continues exactly where the offline writer (or a
// previous session) stopped.
func NewAppender(s *Store) (*Appender, error) {
	m := s.m()
	t := s.template
	parts, err := subgraph.Build(t, s.Assignment())
	if err != nil {
		return nil, err
	}
	a := &Appender{store: s, bins: make([][]binInfo, m.K)}
	for p, pd := range parts {
		nBins := (len(pd.Subgraphs) + m.Bin - 1) / m.Bin
		if nBins == 0 {
			nBins = 1
		}
		if int32(nBins) != m.BinsPerPartition[p] {
			return nil, fmt.Errorf("gofs: partition %d rebuilds to %d bins, manifest says %d", p, nBins, m.BinsPerPartition[p])
		}
		a.bins[p] = make([]binInfo, nBins)
		for b := 0; b < nBins; b++ {
			verts, edges := binMembers(t, pd, b, m.Bin)
			a.bins[p][b] = binInfo{verts: verts, edges: edges}
		}
	}
	if m.Timesteps > 0 {
		ps := ((m.Timesteps - 1) / m.Pack) * m.Pack
		instances, deltas, _, err := s.ReadPackDeltas(ps, nil)
		if err != nil {
			return nil, fmt.Errorf("gofs: rehydrating tail pack %d: %w", ps, err)
		}
		a.tail = instances
		a.prev = instances[len(instances)-1]
		if m.SnapshotEvery > 0 {
			for _, d := range deltas {
				vd, ed := deltaMasks(t, d)
				a.tailVD = append(a.tailVD, vd)
				a.tailED = append(a.tailED, ed)
			}
		}
	}
	return a, nil
}

// deltaMasks expands a decoded change summary back into global dirty masks
// (nil for a nil summary — the collection's first timestep).
func deltaMasks(t *graph.Template, d *graph.Delta) (vd, ed []bool) {
	if d == nil {
		return nil, nil
	}
	vd = make([]bool, t.NumVertices())
	ed = make([]bool, t.NumEdges())
	for _, v := range d.Verts {
		vd[v] = true
	}
	for _, e := range d.Edges {
		ed[e] = true
	}
	return vd, ed
}

// Head returns the most recently appended (or rehydrated) instance, nil on
// an empty dataset. The caller must treat it as immutable.
func (a *Appender) Head() *graph.Instance { return a.prev }

// Append folds one new timestep into the dataset and publishes it: the
// tail pack's slice files are rewritten atomically under the new length's
// name, then the manifest commit makes the timestep visible. The Appender
// takes ownership of ins — callers must not mutate it afterwards.
//
// Determinism: given the same prefix and the same appended instances, the
// produced files are byte-identical regardless of crashes and restarts in
// between, because every input to the encoder (bin layout, snapshot
// predicate, dirty masks) is a pure function of the dataset content.
func (a *Appender) Append(ins *graph.Instance) error {
	s := a.store
	m := s.m()
	T := m.Timesteps
	if ins.Timestep != T {
		return fmt.Errorf("gofs: append timestep %d, want %d", ins.Timestep, T)
	}
	if want := m.T0 + int64(T)*m.Delta; ins.Time != want {
		return fmt.Errorf("gofs: append time %d at timestep %d, want %d", ins.Time, T, want)
	}
	if err := ins.Validate(s.template); err != nil {
		return err
	}
	ps := (T / m.Pack) * m.Pack
	if ps == T {
		// New pack: the previous one is complete (or the dataset empty).
		a.tail = a.tail[:0]
		a.tailVD, a.tailED = a.tailVD[:0], a.tailED[:0]
	}
	var vd, ed []bool
	if m.SnapshotEvery > 0 && T > 0 {
		t := s.template
		vd = make([]bool, t.NumVertices())
		ed = make([]bool, t.NumEdges())
		graph.MarkChanged(a.prev, ins, vd, ed)
	}
	tail := append(a.tail, ins)
	tailVD := append(a.tailVD, vd)
	tailED := append(a.tailED, ed)
	packLen := len(tail)

	for p := range a.bins {
		for b := range a.bins[p] {
			bi := &a.bins[p][b]
			sp := &slicePayload{
				p: p, b: b, packStart: ps,
				verts: bi.verts, edges: bi.edges,
				instances: tail,
			}
			if m.SnapshotEvery > 0 {
				sp.delta = true
				for i := 0; i < packLen; i++ {
					s := ps + i
					sp.snaps = append(sp.snaps, m.snapshotStep(s))
					sp.chV = append(sp.chV, changedIn(bi.verts, tailVD[i]))
					sp.chE = append(sp.chE, changedIn(bi.edges, tailED[i]))
				}
			}
			path := slicePath(s.dir, p, b, ps)
			if packLen < m.Pack {
				path = partSlicePath(s.dir, p, b, ps, packLen)
			}
			if err := writeSliceAtomic(path, sp, m.Compress); err != nil {
				return err
			}
		}
	}

	nm := *m
	nm.Timesteps = T + 1
	if err := s.publish(&nm); err != nil {
		return err
	}
	a.tail = tail
	a.tailVD, a.tailED = tailVD, tailED
	a.prev = ins
	return nil
}

// supersededSlice describes one no-longer-current part file on disk.
type supersededSlice struct {
	path    string
	ps, len int
	size    int64
}

// TrimSuperseded deletes part files made obsolete by newer publications,
// keeping (a) the live generation, (b) the two most recent superseded
// generations per pack — so a reader that resolved a path a moment before
// an append never finds it deleted under its feet — and (c) up to
// retainBytes of older superseded files as a grace window for slow
// readers. Stray temp files from interrupted atomic writes are always
// removed. It returns how many files were deleted and how many bytes were
// freed.
func (s *Store) TrimSuperseded(retainBytes int64) (removed int, freed int64, err error) {
	m := s.m()
	dir := filepath.Join(s.dir, sliceDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	tailPS := -1
	tailLen := 0
	if m.Timesteps > 0 {
		tailPS = ((m.Timesteps - 1) / m.Pack) * m.Pack
		tailLen = m.Timesteps - tailPS
	}
	perBin := make(map[[2]int][]supersededSlice)
	for _, e := range entries {
		name := e.Name()
		if len(name) > 0 && name[0] == '.' {
			// Orphaned temp file from an interrupted atomic write.
			path := filepath.Join(dir, name)
			if info, err := e.Info(); err == nil {
				if os.Remove(path) == nil {
					removed++
					freed += info.Size()
				}
			}
			continue
		}
		var p, b, ps, plen int
		if n, _ := fmt.Sscanf(name, "p%d_b%d_t%d.part%d.slice", &p, &b, &ps, &plen); n != 4 {
			continue
		}
		if ps == tailPS && plen == tailLen && tailLen < m.Pack {
			continue // the live tail generation
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		key := [2]int{p, b}
		perBin[key] = append(perBin[key], supersededSlice{
			path: filepath.Join(dir, name), ps: ps, len: plen, size: info.Size(),
		})
	}
	// Newest-first per bin; the two freshest superseded generations are
	// protected unconditionally.
	var candidates []supersededSlice
	var retained int64
	for _, files := range perBin {
		sort.Slice(files, func(i, j int) bool {
			if files[i].ps != files[j].ps {
				return files[i].ps > files[j].ps
			}
			return files[i].len > files[j].len
		})
		for i, f := range files {
			if i < 2 {
				retained += f.size
				continue
			}
			candidates = append(candidates, f)
		}
	}
	// Oldest first among the remaining, deleted until the superseded total
	// fits the budget.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].ps != candidates[j].ps {
			return candidates[i].ps < candidates[j].ps
		}
		return candidates[i].len < candidates[j].len
	})
	var candBytes int64
	for _, f := range candidates {
		candBytes += f.size
	}
	for _, f := range candidates {
		if retained+candBytes <= retainBytes {
			break
		}
		if err := os.Remove(f.path); err == nil {
			removed++
			freed += f.size
			candBytes -= f.size
		}
	}
	return removed, freed, nil
}
