package gofs

import (
	"io/fs"
	"math/rand"
	"path/filepath"
	"testing"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// writeBoth writes the same collection as a full-format (v1) and a
// delta-encoded (v2) dataset and returns the two directories.
func writeBoth(tb testing.TB, c *graph.Collection, a *partition.Assignment, pack, bin, snapEvery int) (fullDir, deltaDir string) {
	tb.Helper()
	fullDir, deltaDir = tb.TempDir(), tb.TempDir()
	if err := WriteDatasetOptions(fullDir, c, a, Options{Pack: pack, Bin: bin}); err != nil {
		tb.Fatal(err)
	}
	if err := WriteDatasetOptions(deltaDir, c, a, Options{Pack: pack, Bin: bin, SnapshotEvery: snapEvery}); err != nil {
		tb.Fatal(err)
	}
	return fullDir, deltaDir
}

func dirBytes(tb testing.TB, dir string) int64 {
	tb.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	return total
}

func TestDeltaRoundTrip(t *testing.T) {
	c, a := makeDataset(t, 12, 3)
	_, deltaDir := writeBoth(t, c, a, 4, 2, 3)
	s, err := Open(deltaDir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest().SnapshotEvery != 3 {
		t.Fatalf("SnapshotEvery = %d, want 3", s.Manifest().SnapshotEvery)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	collectionsEqual(t, c, got)

	l := NewLoader(s)
	if _, err := l.Load(11); err != nil {
		t.Fatal(err)
	}
	if l.DeltaSteps == 0 || l.SnapshotSteps == 0 {
		t.Fatalf("step-kind counters not accounted: snapshots %d, deltas %d", l.SnapshotSteps, l.DeltaSteps)
	}
	if d := l.Delta(8); d == nil {
		t.Fatal("Delta(8) = nil inside cached pack of a delta store")
	}
	if _, err := l.Load(0); err != nil {
		t.Fatal(err)
	}
	if d := l.Delta(0); d != nil {
		t.Fatalf("Delta(0) = %+v, want nil (no predecessor)", d)
	}
	// Snapshot-boundary timesteps (3, 6, 9 with SnapshotEvery 3; 4, 8 as
	// pack starts) still carry change summaries.
	for _, ts := range []int{3, 4} {
		if _, err := l.Load(ts); err != nil {
			t.Fatal(err)
		}
		if l.Delta(ts) == nil {
			t.Fatalf("Delta(%d) = nil at a snapshot timestep", ts)
		}
	}
}

func TestDeltaMatchesDiff(t *testing.T) {
	c, a := makeDataset(t, 10, 2)
	_, deltaDir := writeBoth(t, c, a, 5, 2, 2)
	s, err := Open(deltaDir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(s)
	for ts := 1; ts < 10; ts++ {
		if _, err := l.Load(ts); err != nil {
			t.Fatal(err)
		}
		got := l.Delta(ts)
		if got == nil {
			t.Fatalf("Delta(%d) = nil", ts)
		}
		want := graph.DiffInstances(c.Instance(ts-1), c.Instance(ts))
		if len(got.Verts) != len(want.Verts) || len(got.Edges) != len(want.Edges) {
			t.Fatalf("Delta(%d): %d verts/%d edges, diff says %d/%d",
				ts, len(got.Verts), len(got.Edges), len(want.Verts), len(want.Edges))
		}
		for i := range want.Verts {
			if got.Verts[i] != want.Verts[i] {
				t.Fatalf("Delta(%d).Verts[%d] = %d, want %d", ts, i, got.Verts[i], want.Verts[i])
			}
		}
		for i := range want.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("Delta(%d).Edges[%d] = %d, want %d", ts, i, got.Edges[i], want.Edges[i])
			}
		}
	}
}

func TestDeltaEmptySteps(t *testing.T) {
	c, a := makeDataset(t, 8, 2)
	// Freeze timesteps 1-3 to step 0's values: their deltas are empty.
	for s := 1; s <= 3; s++ {
		src, dst := c.Instance(0), c.Instance(s)
		for i := range src.VertexCols {
			dst.VertexCols[i] = src.VertexCols[i].Clone()
		}
		for i := range src.EdgeCols {
			dst.EdgeCols[i] = src.EdgeCols[i].Clone()
		}
	}
	_, deltaDir := writeBoth(t, c, a, 4, 2, 4)
	s, err := Open(deltaDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	collectionsEqual(t, c, got)
	l := NewLoader(s)
	if _, err := l.Load(2); err != nil {
		t.Fatal(err)
	}
	for ts := 1; ts <= 3; ts++ {
		d := l.Delta(ts)
		if d == nil {
			t.Fatalf("Delta(%d) = nil, want empty non-nil", ts)
		}
		if len(d.Verts) != 0 || len(d.Edges) != 0 {
			t.Fatalf("Delta(%d) = %d verts/%d edges, want empty", ts, len(d.Verts), len(d.Edges))
		}
	}
}

func TestDeltaSequentialVsRandomAccess(t *testing.T) {
	c, a := makeDataset(t, 12, 3)
	_, deltaDir := writeBoth(t, c, a, 4, 2, 3)
	s, err := Open(deltaDir)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential sweep.
	seq := make([]*graph.Instance, 12)
	l := NewLoader(s)
	for ts := 0; ts < 12; ts++ {
		ins, err := l.Load(ts)
		if err != nil {
			t.Fatal(err)
		}
		seq[ts] = ins.Clone()
	}
	// Random access through a fresh loader and through the cache: pack
	// decode order must not matter because every pack starts at a snapshot.
	rng := rand.New(rand.NewSource(9))
	order := rng.Perm(12)
	rl := NewLoader(s)
	cache := NewInstanceCache(s, 2)
	for _, ts := range order {
		for name, src := range map[string]func(int) (*graph.Instance, error){"loader": rl.Load, "cache": cache.Load} {
			ins, err := src(ts)
			if err != nil {
				t.Fatalf("%s Load(%d): %v", name, ts, err)
			}
			w := seq[ts]
			for ci := range w.EdgeCols {
				for e := range w.EdgeCols[ci].Floats {
					if ins.EdgeCols[ci].Floats[e] != w.EdgeCols[ci].Floats[e] {
						t.Fatalf("%s step %d edge col %d slot %d differs from sequential sweep", name, ts, ci, e)
					}
				}
			}
			for ci := range w.VertexCols {
				if w.VertexCols[ci].Type != graph.TStringList {
					continue
				}
				for v := range w.VertexCols[ci].StringLists {
					wl, gl := w.VertexCols[ci].StringLists[v], ins.VertexCols[ci].StringLists[v]
					if len(wl) != len(gl) {
						t.Fatalf("%s step %d vertex %d list len differs", name, ts, v)
					}
					for j := range wl {
						if wl[j] != gl[j] {
							t.Fatalf("%s step %d vertex %d tag %d differs", name, ts, v, j)
						}
					}
				}
			}
		}
	}
}

func TestDeltaCompressedRoundTrip(t *testing.T) {
	c, a := makeDataset(t, 10, 2)
	dir := t.TempDir()
	if err := WriteDatasetOptions(dir, c, a, Options{Pack: 4, Bin: 2, Compress: true, SnapshotEvery: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	collectionsEqual(t, c, got)
}

// TestMixedFormatLoad is the compatibility smoke: one reader binary loads a
// version-1 full dataset and a version-2 delta dataset of the same
// collection and sees identical instances; the v1 store just reports no
// change summaries.
func TestMixedFormatLoad(t *testing.T) {
	c, a := makeDataset(t, 10, 2)
	fullDir, deltaDir := writeBoth(t, c, a, 4, 2, 2)
	for _, dir := range []string{fullDir, deltaDir} {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		collectionsEqual(t, c, got)
	}
	fs, err := Open(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(fs)
	if _, err := l.Load(5); err != nil {
		t.Fatal(err)
	}
	if d := l.Delta(5); d != nil {
		t.Fatalf("full-format store reported a delta: %+v", d)
	}
	if l.DeltaSteps != 0 {
		t.Fatalf("full-format store counted %d delta steps", l.DeltaSteps)
	}
}

// TestDeltaShrinkLowChurn pins the acceptance bound: at 1% edge churn the
// delta layout must shrink the dataset at least 5x on disk.
func TestDeltaShrinkLowChurn(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 16, Cols: 16, RemoveFrac: 0.1, Seed: 3})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{
		Timesteps: 30, T0: 0, Delta: 60, Min: 1, Max: 100, Seed: 4, Churn: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 6}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	fullDir, deltaDir := writeBoth(t, c, a, 10, 2, 10)
	full, delta := dirBytes(t, fullDir), dirBytes(t, deltaDir)
	if delta <= 0 || full/delta < 5 {
		t.Fatalf("delta store %d bytes vs full %d: shrink %.1fx, want >= 5x",
			delta, full, float64(full)/float64(delta))
	}
	// And it still decodes to the same collection.
	s, err := Open(deltaDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	collectionsEqual(t, c, got)
}

// FuzzDeltaRoundTrip drives full↔delta encode/decode through random
// (seed, pack, snapshot-interval, length) combinations, covering empty
// deltas, snapshot-boundary steps, and ragged final packs.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(12))
	f.Add(int64(7), uint8(1), uint8(1), uint8(5))
	f.Add(int64(11), uint8(10), uint8(7), uint8(20))
	f.Add(int64(3), uint8(3), uint8(10), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, pack, snapEvery, steps uint8) {
		nSteps := int(steps)%20 + 1
		nPack := int(pack)%10 + 1
		nSnap := int(snapEvery)%10 + 1
		g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, RemoveFrac: 0.1, Seed: 3})
		c, err := gen.RandomLatencies(g, gen.LatencyConfig{
			Timesteps: nSteps, T0: 0, Delta: 60, Min: 1, Max: 100,
			Seed: seed, Churn: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sir, err := gen.SIRTweets(g, gen.SIRConfig{
			Timesteps: nSteps, T0: 0, Delta: 60, Memes: []string{"#m"},
			HitProb: 0.3, Seed: seed + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ti := g.VertexSchema().Index(gen.AttrTweets)
		for s := 0; s < nSteps; s++ {
			c.Instance(s).VertexCols[ti] = sir.Collection.Instance(s).VertexCols[ti]
		}
		a, err := (partition.Multilevel{Seed: 6}).Partition(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := WriteDatasetOptions(dir, c, a, Options{Pack: nPack, Bin: 2, SnapshotEvery: nSnap}); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		collectionsEqual(t, c, got)
	})
}
