package gofs

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// Default packing parameters, matching the experimental setup in §IV-A
// ("temporal packing of 10 and subgraph binning of 5").
const (
	DefaultPack = 10
	DefaultBin  = 5
)

// Dataset file names within a dataset directory.
const (
	templateFile = "template.gofs"
	manifestFile = "manifest.gofs"
	sliceDir     = "slices"
)

// Manifest describes a stored dataset: the partition assignment, the time
// axis, and the packing parameters.
type Manifest struct {
	K         int
	Parts     []int32
	T0        int64
	Delta     int64
	Timesteps int
	Pack      int
	Bin       int
	// Compress marks gzip-compressed slice payloads.
	Compress bool
	// BinsPerPartition[p] is the number of slice bins partition p was
	// split into.
	BinsPerPartition []int32
	// SnapshotEvery > 0 marks a delta-encoded dataset (format version 2):
	// timesteps divisible by it (or by Pack — packs stay self-contained) are
	// stored as full snapshots, the rest as deltas against the previous
	// timestep. 0 is the classic full-instance layout.
	SnapshotEvery int
}

// snapshotStep reports whether timestep s of a delta-encoded dataset is
// stored as a full snapshot rather than a delta. Pack starts are always
// snapshots so every slice file can be decoded on its own.
func (m *Manifest) snapshotStep(s int) bool {
	if m.SnapshotEvery <= 0 {
		return true
	}
	return s%m.Pack == 0 || s%m.SnapshotEvery == 0
}

// packStepKinds counts how many timesteps of the pack starting at ps are
// stored as snapshots vs. deltas.
func (m *Manifest) packStepKinds(ps, packLen int) (snapshots, deltas int) {
	for s := ps; s < ps+packLen; s++ {
		if m.snapshotStep(s) {
			snapshots++
		} else {
			deltas++
		}
	}
	return snapshots, deltas
}

// WriteDataset persists a collection, partitioned by the assignment, as a
// GoFS dataset: a template file, a manifest, and one slice file per
// (partition, subgraph bin, temporal pack).
func WriteDataset(dir string, c *graph.Collection, a *partition.Assignment, pack, bin int) error {
	return WriteDatasetOptions(dir, c, a, Options{Pack: pack, Bin: bin})
}

// Options extends WriteDataset with storage options.
type Options struct {
	// Pack is the temporal packing factor (0 = DefaultPack).
	Pack int
	// Bin is the subgraph binning factor (0 = DefaultBin).
	Bin int
	// Compress gzip-compresses slice payloads — the storage optimization
	// the paper's related-work section borrows from time-evolving graph
	// systems ("enables storing compressed graphs"). Tweet-style sparse
	// columns compress well; dense random floats do not.
	Compress bool
	// SnapshotEvery, when > 0, delta-encodes the dataset: full snapshots at
	// that interval (and at every pack start), sparse deltas in between —
	// DeltaGraph-style snapshot chains. Low-churn collections shrink by the
	// churn factor; 0 keeps the byte-identical full-instance layout.
	SnapshotEvery int
}

// WriteDatasetOptions is WriteDataset with explicit Options.
func WriteDatasetOptions(dir string, c *graph.Collection, a *partition.Assignment, o Options) error {
	pack, bin := o.Pack, o.Bin
	if pack <= 0 {
		pack = DefaultPack
	}
	if bin <= 0 {
		bin = DefaultBin
	}
	t := c.Template
	if err := a.Validate(t); err != nil {
		return err
	}
	parts, err := subgraph.Build(t, a)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dir, sliceDir), 0o755); err != nil {
		return err
	}
	if err := writeTemplateFile(filepath.Join(dir, templateFile), t); err != nil {
		return err
	}
	var plan *deltaPlan
	if o.SnapshotEvery > 0 {
		plan = newDeltaPlan(c, o.SnapshotEvery)
	}

	// Bin layout: consecutive subgraphs of each partition grouped ≤bin at a
	// time; each bin's vertex list is the concatenation of its subgraphs'
	// template vertex indices, and its edge list is the template slots of
	// all out-edges of those vertices.
	binsPer := make([]int32, a.K)
	for p, pd := range parts {
		nBins := (len(pd.Subgraphs) + bin - 1) / bin
		if nBins == 0 {
			nBins = 1 // empty partition still gets one (empty) bin
		}
		binsPer[p] = int32(nBins)
		for b := 0; b < nBins; b++ {
			verts, edges := binMembers(t, pd, b, bin)
			for packStart := 0; packStart < c.NumInstances(); packStart += pack {
				packLen := pack
				if packStart+packLen > c.NumInstances() {
					packLen = c.NumInstances() - packStart
				}
				path := slicePath(dir, p, b, packStart)
				if err := writeSliceFile(path, c, p, b, packStart, packLen, verts, edges, o.Compress, plan); err != nil {
					return err
				}
			}
		}
	}

	m := Manifest{
		K: a.K, Parts: a.Parts,
		T0: c.T0, Delta: c.Delta,
		Timesteps: c.NumInstances(),
		Pack:      pack, Bin: bin,
		Compress:         o.Compress,
		BinsPerPartition: binsPer,
		SnapshotEvery:    o.SnapshotEvery,
	}
	return writeManifestFile(filepath.Join(dir, manifestFile), &m)
}

// deltaPlan precomputes, for a delta-encoded write, which template vertices
// and edge slots changed at each timestep relative to its predecessor.
type deltaPlan struct {
	every  int
	vDirty [][]bool // [timestep][template vertex index]
	eDirty [][]bool // [timestep][template edge slot]
}

func newDeltaPlan(c *graph.Collection, every int) *deltaPlan {
	t := c.Template
	n := c.NumInstances()
	p := &deltaPlan{every: every, vDirty: make([][]bool, n), eDirty: make([][]bool, n)}
	for s := 1; s < n; s++ {
		p.vDirty[s] = make([]bool, t.NumVertices())
		p.eDirty[s] = make([]bool, t.NumEdges())
		graph.MarkChanged(c.Instance(s-1), c.Instance(s), p.vDirty[s], p.eDirty[s])
	}
	return p
}

// snapshot reports whether timestep s is written as a full snapshot of the
// pack starting at packStart.
func (p *deltaPlan) snapshot(s, packStart int) bool {
	return s == packStart || s%p.every == 0
}

// changedIn filters a bin's member indices down to those dirty at one
// timestep (nil dirty — timestep 0 — means nothing to report).
func changedIn(members []int32, dirty []bool) []int32 {
	if dirty == nil {
		return nil
	}
	var out []int32
	for _, i := range members {
		if dirty[i] {
			out = append(out, i)
		}
	}
	return out
}

// binMembers returns the template vertex indices and edge slots of bin b of
// a partition.
func binMembers(t *graph.Template, pd *subgraph.PartitionData, b, bin int) (verts, edges []int32) {
	lo := b * bin
	hi := lo + bin
	if hi > len(pd.Subgraphs) {
		hi = len(pd.Subgraphs)
	}
	for s := lo; s < hi; s++ {
		for _, lv := range pd.Subgraphs[s].Verts {
			g := pd.GlobalIdx[lv]
			verts = append(verts, g)
			elo, ehi := t.OutEdges(int(g))
			for e := elo; e < ehi; e++ {
				edges = append(edges, int32(e))
			}
		}
	}
	return verts, edges
}

func slicePath(dir string, p, b, packStart int) string {
	return filepath.Join(dir, sliceDir, fmt.Sprintf("p%d_b%d_t%d.slice", p, b, packStart))
}

// partSlicePath names a growing tail pack holding packLen < Pack timesteps.
// The length lives in the name so every manifest generation maps to a
// distinct, immutable set of files: publishing timestep T+1 writes new
// part files while readers holding the previous manifest keep reading the
// old ones. Once a pack completes, the plain slicePath name takes over and
// the part files become garbage for TrimSuperseded.
func partSlicePath(dir string, p, b, packStart, packLen int) string {
	return filepath.Join(dir, sliceDir, fmt.Sprintf("p%d_b%d_t%d.part%d.slice", p, b, packStart, packLen))
}

// slicePathFor resolves the on-disk file for a pack as described by a
// manifest generation. Complete packs (and offline-written partial final
// packs) live at the plain name; a live-appended tail pack lives at the
// length-suffixed part name. The part name is preferred when it exists so
// an appended dataset's tail wins over a stale plain file.
func slicePathFor(dir string, m *Manifest, p, b, packStart, packLen int) string {
	if packLen < m.Pack {
		if part := partSlicePath(dir, p, b, packStart, packLen); fileExists(part) {
			return part
		}
	}
	return slicePath(dir, p, b, packStart)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// slicePayload is the fully resolved content of one slice file, shared by
// the offline writer (WriteDataset) and the live Appender so both produce
// byte-identical encodings of the same logical pack.
type slicePayload struct {
	p, b      int
	packStart int
	verts     []int32
	edges     []int32
	instances []*graph.Instance // len = packLen
	delta     bool              // format version 2
	// Per step, version 2 only: snapshot-vs-delta kind and the bin's
	// changed-member lists (nil at the collection's first timestep).
	snaps    []bool
	chV, chE [][]int32
}

func writeSliceFile(path string, c *graph.Collection, p, b, packStart, packLen int, verts, edges []int32, compress bool, plan *deltaPlan) error {
	sp := &slicePayload{p: p, b: b, packStart: packStart, verts: verts, edges: edges}
	for s := packStart; s < packStart+packLen; s++ {
		sp.instances = append(sp.instances, c.Instance(s))
	}
	if plan != nil {
		sp.delta = true
		for s := packStart; s < packStart+packLen; s++ {
			sp.snaps = append(sp.snaps, plan.snapshot(s, packStart))
			sp.chV = append(sp.chV, changedIn(verts, plan.vDirty[s]))
			sp.chE = append(sp.chE, changedIn(edges, plan.eDirty[s]))
		}
	}
	return writeSliceData(path, sp, compress)
}

// encodeSlice writes the framed slice encoding to a sink. The byte layout
// is the single source of truth for slice files: every writer path funnels
// through here, which is what makes "WAL replay yields byte-identical
// packs" a property of the format rather than of any one writer.
func encodeSlice(sink io.Writer, sp *slicePayload) error {
	w := newWriter(sink)
	w.u32(sliceMagic)
	if sp.delta {
		w.u32(formatVersionDelta)
	} else {
		w.u32(formatVersion)
	}
	w.u32(uint32(sp.p))
	w.u32(uint32(sp.b))
	w.u32(uint32(sp.packStart))
	w.u32(uint32(len(sp.instances)))
	w.i32s(sp.verts)
	w.i32s(sp.edges)
	for i, ins := range sp.instances {
		w.i64(ins.Time)
		if !sp.delta {
			for c := range ins.VertexCols {
				writeColumnValues(w, &ins.VertexCols[c], sp.verts)
			}
			for c := range ins.EdgeCols {
				writeColumnValues(w, &ins.EdgeCols[c], sp.edges)
			}
			continue
		}
		// Version 2: every record carries the bin's changed-index summary
		// (empty at the collection's first timestep, where "changed" is
		// undefined) so the engine can skip clean subgraphs even across
		// snapshot boundaries; snapshots then store full columns, deltas
		// only the changed values.
		if sp.snaps[i] {
			w.byteVal(recSnapshot)
			w.i32s(sp.chV[i])
			w.i32s(sp.chE[i])
			for c := range ins.VertexCols {
				writeColumnValues(w, &ins.VertexCols[c], sp.verts)
			}
			for c := range ins.EdgeCols {
				writeColumnValues(w, &ins.EdgeCols[c], sp.edges)
			}
		} else {
			w.byteVal(recDelta)
			w.i32s(sp.chV[i])
			w.i32s(sp.chE[i])
			for c := range ins.VertexCols {
				writeColumnValues(w, &ins.VertexCols[c], sp.chV[i])
			}
			for c := range ins.EdgeCols {
				writeColumnValues(w, &ins.EdgeCols[c], sp.chE[i])
			}
		}
	}
	return w.finish()
}

// writeSliceData creates path directly (non-atomic; offline writes into a
// fresh dataset directory need no stronger guarantee).
func writeSliceData(path string, sp *slicePayload, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var sink io.Writer = f
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(f)
		sink = gz
	}
	if err := encodeSlice(sink, sp); err != nil {
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("gofs: writing %s: %w", path, err)
		}
	}
	return f.Close()
}

// writeSliceAtomic writes the slice to a temp file in the slices directory,
// fsyncs, and renames it into place — the append path's publication step,
// so a crash mid-append never leaves a readable-but-partial slice where a
// reader resolving the previous generation could trip over it.
func writeSliceAtomic(path string, sp *slicePayload, compress bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".slice_*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	var sink io.Writer = tmp
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(tmp)
		sink = gz
	}
	if err := encodeSlice(sink, sp); err != nil {
		return fail(err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: publishing %s: %w", path, err)
	}
	return nil
}

func writeTemplateFile(path string, t *graph.Template) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := newWriter(f)
	w.u32(templateMagic)
	w.u32(formatVersion)
	w.str(t.Name)
	ids := make([]int64, t.NumVertices())
	for i := range ids {
		ids[i] = int64(t.VertexID(i))
	}
	w.i64s(ids)
	offsets, targets, edgeIDs := t.RawCSR()
	w.i64s(offsets)
	w.i32s(targets)
	eids := make([]int64, len(edgeIDs))
	for i := range eids {
		eids[i] = int64(edgeIDs[i])
	}
	w.i64s(eids)
	writeSchema(w, t.VertexSchema())
	writeSchema(w, t.EdgeSchema())
	if err := w.finish(); err != nil {
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	return f.Close()
}

func readTemplateFile(path string) (*graph.Template, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := newReader(f)
	if m := r.u32(); r.err == nil && m != templateMagic {
		return nil, fmt.Errorf("gofs: %s: bad magic %08x", path, m)
	}
	if v := r.u32(); r.err == nil && v != formatVersion {
		return nil, fmt.Errorf("gofs: %s: unsupported version %d", path, v)
	}
	name := r.str()
	rawIDs := r.i64s()
	offsets := r.i64s()
	targets := r.i32s()
	rawEIDs := r.i64s()
	vs := readSchema(r)
	es := readSchema(r)
	if err := r.verifyCRC(); err != nil {
		return nil, fmt.Errorf("gofs: %s: %w", path, err)
	}
	ids := make([]graph.VertexID, len(rawIDs))
	for i := range ids {
		ids[i] = graph.VertexID(rawIDs[i])
	}
	eids := make([]graph.EdgeID, len(rawEIDs))
	for i := range eids {
		eids[i] = graph.EdgeID(rawEIDs[i])
	}
	return graph.FromCSR(name, ids, offsets, targets, eids, vs, es)
}

func encodeManifest(sink io.Writer, m *Manifest) error {
	w := newWriter(sink)
	w.u32(manifestMagic)
	if m.SnapshotEvery > 0 {
		w.u32(formatVersionDelta)
	} else {
		w.u32(formatVersion)
	}
	w.u32(uint32(m.K))
	w.i32s(m.Parts)
	w.i64(m.T0)
	w.i64(m.Delta)
	w.u32(uint32(m.Timesteps))
	w.u32(uint32(m.Pack))
	w.u32(uint32(m.Bin))
	w.boolVal(m.Compress)
	w.i32s(m.BinsPerPartition)
	if m.SnapshotEvery > 0 {
		w.u32(uint32(m.SnapshotEvery))
	}
	return w.finish()
}

func writeManifestFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := encodeManifest(f, m); err != nil {
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	return f.Close()
}

// writeManifestAtomic publishes a manifest via temp+fsync+rename. This is
// the commit point of a live append: a crash before the rename leaves the
// previous manifest (and its consistent file set) in place; a crash after
// it leaves the new generation fully visible.
func writeManifestAtomic(path string, m *Manifest) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest_*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := encodeManifest(tmp, m); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: publishing %s: %w", path, err)
	}
	return nil
}

func readManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := newReader(f)
	if m := r.u32(); r.err == nil && m != manifestMagic {
		return nil, fmt.Errorf("gofs: %s: bad magic %08x", path, m)
	}
	v := r.u32()
	if r.err == nil && v != formatVersion && v != formatVersionDelta {
		return nil, fmt.Errorf("gofs: %s: unsupported version %d", path, v)
	}
	m := &Manifest{}
	m.K = int(r.u32())
	m.Parts = r.i32s()
	m.T0 = r.i64()
	m.Delta = r.i64()
	m.Timesteps = int(r.u32())
	m.Pack = int(r.u32())
	m.Bin = int(r.u32())
	m.Compress = r.boolVal()
	m.BinsPerPartition = r.i32s()
	if v == formatVersionDelta {
		m.SnapshotEvery = int(r.u32())
	}
	if err := r.verifyCRC(); err != nil {
		return nil, fmt.Errorf("gofs: %s: %w", path, err)
	}
	return m, nil
}
