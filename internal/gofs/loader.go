package gofs

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"tsgraph/internal/chaos"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// Store is an opened GoFS dataset: template and manifest are resident;
// instance data stays on disk until a Loader touches it.
//
// The manifest is held behind an atomic pointer because a live Appender can
// publish new generations while queries are in flight: each reader captures
// one generation at the start of an operation and sees a consistent
// (possibly slightly stale) dataset — stored prefixes are immutable, so a
// stale manifest only under-reports Timesteps, never mis-describes data.
type Store struct {
	dir      string
	template *graph.Template
	manifest atomic.Pointer[Manifest]
	tel      *Telemetry
}

// Open opens a dataset directory written by WriteDataset.
func Open(dir string) (*Store, error) {
	t, err := readTemplateFile(joinPath(dir, templateFile))
	if err != nil {
		return nil, err
	}
	m, err := readManifestFile(joinPath(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	if len(m.Parts) != t.NumVertices() {
		return nil, fmt.Errorf("gofs: manifest assignment covers %d vertices, template has %d", len(m.Parts), t.NumVertices())
	}
	s := &Store{dir: dir, template: t, tel: newTelemetry(m)}
	s.manifest.Store(m)
	return s, nil
}

// Telemetry returns the store's storage-tier instrumentation (never nil
// for an Open-ed store), an obs.Collector a daemon can register.
func (s *Store) Telemetry() *Telemetry { return s.tel }

func joinPath(dir, name string) string { return dir + string(os.PathSeparator) + name }

// Template returns the dataset's template.
func (s *Store) Template() *graph.Template { return s.template }

// Dir returns the dataset directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// m returns the current manifest generation. Callers capture it once per
// operation so every derived decision (pack length, file name, compression)
// comes from one consistent generation.
func (s *Store) m() *Manifest { return s.manifest.Load() }

// Manifest returns the dataset's current manifest generation. Treat it as
// immutable: appends publish fresh copies rather than mutating it.
func (s *Store) Manifest() *Manifest { return s.m() }

// publish persists a new manifest generation atomically (temp+fsync+rename)
// and then makes it the store's current one. This is the single commit
// point for live appends: readers switch generations only after the bytes
// are durable.
func (s *Store) publish(m *Manifest) error {
	if err := writeManifestAtomic(joinPath(s.dir, manifestFile), m); err != nil {
		return err
	}
	s.manifest.Store(m)
	s.tel.updateShape(m)
	return nil
}

// Assignment reconstructs the stored partition assignment.
func (s *Store) Assignment() *partition.Assignment {
	m := s.m()
	return &partition.Assignment{K: m.K, Parts: m.Parts}
}

// Timesteps returns the number of stored instances. On a live dataset this
// is the watermark: it only ever grows, and every timestep below it is
// durably readable.
func (s *Store) Timesteps() int { return s.m().Timesteps }

// Loader incrementally materializes graph instances from slice files. It
// keeps the current temporal pack in memory and evicts it when a timestep
// outside the pack is requested — the loading pattern that produces the
// paper's periodic per-timestep time spikes.
type Loader struct {
	store        *Store
	packStart    int
	cached       []*graph.Instance // instances of the cached pack, or nil
	cachedDeltas []*graph.Delta    // per cached timestep, nil for full-format stores
	// Chaos, when non-nil, arms the gofs.load failpoint: each pack
	// materialization registers one hit and fails with the injected fault
	// when it fires (fault-injection testing of the load path; nil in
	// production).
	Chaos *chaos.Injector
	// Loads counts slice-file reads performed, for tests and reports.
	Loads int
	// PackLoads counts pack materializations (each one is a §IV-D load
	// spike when paid inline; core.PrefetchSource hides it behind
	// compute).
	PackLoads int
	// LastPackDur is the decode wall time of the most recent pack
	// materialization.
	LastPackDur time.Duration
	// TotalPackDur accumulates decode wall time across all pack
	// materializations.
	TotalPackDur time.Duration
	// SnapshotSteps counts timesteps materialized from full snapshot
	// records; DeltaSteps counts timesteps materialized by patching the
	// previous timestep (always 0 on full-format datasets).
	SnapshotSteps int
	DeltaSteps    int
}

// NewLoader creates a loader over an open store.
func NewLoader(s *Store) *Loader {
	return &Loader{store: s, packStart: -1}
}

// Load returns the instance at a timestep, reading the containing pack's
// slice files if they are not cached.
func (l *Loader) Load(timestep int) (*graph.Instance, error) {
	m := l.store.m()
	if timestep < 0 || timestep >= m.Timesteps {
		return nil, fmt.Errorf("gofs: timestep %d outside [0,%d)", timestep, m.Timesteps)
	}
	ps := (timestep / m.Pack) * m.Pack
	// The third condition catches a stale tail-pack decode on a live
	// dataset: the pack was cached when it held fewer timesteps than the
	// current manifest says it does now.
	if l.cached == nil || ps != l.packStart || timestep-ps >= len(l.cached) {
		if err := l.loadPack(ps); err != nil {
			return nil, err
		}
	}
	ins := l.cached[timestep-l.packStart]
	if ins == nil {
		return nil, fmt.Errorf("gofs: timestep %d missing from pack %d", timestep, l.packStart)
	}
	return ins, nil
}

// loadPack reads every partition's and bin's slice file for the pack
// starting at ps and assembles full instances.
func (l *Loader) loadPack(ps int) error {
	if err := l.Chaos.Hit(chaos.SiteGoFSLoad); err != nil {
		return fmt.Errorf("gofs: loading pack %d: %w", ps, err)
	}
	packStart := time.Now()
	defer func() {
		l.LastPackDur = time.Since(packStart)
		l.TotalPackDur += l.LastPackDur
		l.PackLoads++
	}()
	instances, deltas, reads, err := l.store.readPackSlices(ps, nil)
	l.Loads += reads
	if err != nil {
		return err
	}
	l.packStart = ps
	l.cached = instances
	l.cachedDeltas = deltas
	snaps, dsteps := l.store.m().packStepKinds(ps, len(instances))
	l.SnapshotSteps += snaps
	l.DeltaSteps += dsteps
	return nil
}

// Delta returns what changed between timestep-1 and timestep, valid while
// the containing pack is cached (i.e. right after Load(timestep)). nil means
// unknown — full-format datasets, the collection's first timestep, or a
// timestep outside the cached pack — and callers must assume everything
// changed.
func (l *Loader) Delta(timestep int) *graph.Delta {
	if l.cachedDeltas == nil || timestep < l.packStart || timestep >= l.packStart+len(l.cachedDeltas) {
		return nil
	}
	return l.cachedDeltas[timestep-l.packStart]
}

// ReadPack decodes the pack starting at ps into full instances, reading
// every partition's and bin's slice file. sliceReads reports how many slice
// files were read (for load accounting). inj, when non-nil, arms the
// gofs.load failpoint exactly as Loader does. The decode touches no shared
// state, so concurrent ReadPack calls on one Store are safe — the
// single-flight grouping that avoids duplicating them lives in
// InstanceCache.
func (s *Store) ReadPack(ps int, inj *chaos.Injector) (instances []*graph.Instance, sliceReads int, err error) {
	instances, _, sliceReads, err = s.ReadPackDeltas(ps, inj)
	return instances, sliceReads, err
}

// ReadPackDeltas is ReadPack plus the per-timestep change summaries decoded
// from a delta-encoded (version 2) dataset: deltas[i] describes what changed
// between timesteps ps+i-1 and ps+i. Entries are nil where the store carries
// no change information (full-format datasets, or the collection's first
// timestep).
func (s *Store) ReadPackDeltas(ps int, inj *chaos.Injector) (instances []*graph.Instance, deltas []*graph.Delta, sliceReads int, err error) {
	if err := inj.Hit(chaos.SiteGoFSLoad); err != nil {
		return nil, nil, 0, fmt.Errorf("gofs: loading pack %d: %w", ps, err)
	}
	return s.readPackSlices(ps, nil)
}

// ReadPackDeltasParts is ReadPackDeltas restricted to a subset of
// partitions: slice files for partitions p with !want[p] are skipped
// entirely (no read, no decode), leaving those partitions' columns at zero
// values in the returned instances. This is how a shard rank loads only
// its owned partitions — the dominant cost of a pack load (slice I/O,
// decompression, attribute decode) scales with the partitions actually
// wanted. The returned deltas likewise summarize only the wanted
// partitions' changes. nil want loads everything.
func (s *Store) ReadPackDeltasParts(ps int, inj *chaos.Injector, want []bool) (instances []*graph.Instance, deltas []*graph.Delta, sliceReads int, err error) {
	if err := inj.Hit(chaos.SiteGoFSLoad); err != nil {
		return nil, nil, 0, fmt.Errorf("gofs: loading pack %d: %w", ps, err)
	}
	return s.readPackSlices(ps, want)
}

func (s *Store) readPackSlices(ps int, want []bool) ([]*graph.Instance, []*graph.Delta, int, error) {
	decodeStart := time.Now()
	defer func() { s.tel.ObservePackDecode(time.Since(decodeStart)) }()
	m := s.m()
	t := s.template
	packLen := m.Pack
	if ps+packLen > m.Timesteps {
		packLen = m.Timesteps - ps
	}
	instances := make([]*graph.Instance, packLen)
	for i := range instances {
		step := ps + i
		instances[i] = graph.NewInstance(t, step, m.T0+int64(step)*m.Delta)
	}
	var deltas []*graph.Delta
	if m.SnapshotEvery > 0 {
		deltas = make([]*graph.Delta, packLen)
		for i := range deltas {
			if ps+i > 0 {
				deltas[i] = &graph.Delta{Timestep: ps + i}
			}
		}
	}
	reads := 0
	for p := 0; p < m.K; p++ {
		if want != nil && (p >= len(want) || !want[p]) {
			continue
		}
		for b := 0; b < int(m.BinsPerPartition[p]); b++ {
			path := slicePathFor(s.dir, m, p, b, ps, packLen)
			if err := s.readSlice(path, m, p, b, ps, packLen, instances, deltas); err != nil {
				return nil, nil, reads, err
			}
			reads++
		}
	}
	// Each vertex and edge belongs to exactly one bin, so the per-bin
	// summaries concatenate without duplicates; sort for determinism.
	for _, d := range deltas {
		if d != nil {
			sort.Slice(d.Verts, func(a, b int) bool { return d.Verts[a] < d.Verts[b] })
			sort.Slice(d.Edges, func(a, b int) bool { return d.Edges[a] < d.Edges[b] })
		}
	}
	return instances, deltas, reads, nil
}

func (s *Store) readSlice(path string, m *Manifest, p, b, ps, packLen int, instances []*graph.Instance, deltas []*graph.Delta) error {
	readStart := time.Now()
	defer func() { s.tel.ObserveSliceRead(time.Since(readStart)) }()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Count file bytes below any decompression so bytes-read reflects disk
	// traffic, not the inflated payload.
	var src io.Reader = &countingReader{r: f, t: s.tel}
	if m.Compress {
		gz, err := gzip.NewReader(src)
		if err != nil {
			return fmt.Errorf("gofs: %s: %w", path, err)
		}
		defer gz.Close()
		src = gz
	}
	r := newReader(src)
	if m := r.u32(); r.err == nil && m != sliceMagic {
		return fmt.Errorf("gofs: %s: bad magic %08x", path, m)
	}
	v := r.u32()
	if r.err == nil && v != formatVersion && v != formatVersionDelta {
		return fmt.Errorf("gofs: %s: unsupported version %d", path, v)
	}
	if r.err == nil && deltas != nil && v != formatVersionDelta {
		// The manifest promised change summaries; a full-format slice would
		// silently present its bin as never changing to the incremental
		// scheduler.
		return fmt.Errorf("gofs: %s: version-%d slice in a delta-encoded dataset", path, v)
	}
	if got := int(r.u32()); r.err == nil && got != p {
		return fmt.Errorf("gofs: %s: partition %d, want %d", path, got, p)
	}
	if got := int(r.u32()); r.err == nil && got != b {
		return fmt.Errorf("gofs: %s: bin %d, want %d", path, got, b)
	}
	if got := int(r.u32()); r.err == nil && got != ps {
		return fmt.Errorf("gofs: %s: pack start %d, want %d", path, got, ps)
	}
	if got := int(r.u32()); r.err == nil && got != packLen {
		return fmt.Errorf("gofs: %s: pack length %d, want %d", path, got, packLen)
	}
	verts := r.i32s()
	edges := r.i32s()
	t := s.template
	for _, v := range verts {
		if int(v) < 0 || int(v) >= t.NumVertices() {
			return fmt.Errorf("gofs: %s: vertex index %d out of range", path, v)
		}
	}
	for _, e := range edges {
		if int(e) < 0 || int(e) >= t.NumEdges() {
			return fmt.Errorf("gofs: %s: edge slot %d out of range", path, e)
		}
	}
	for i := 0; i < packLen; i++ {
		ins := instances[i]
		fileTime := r.i64()
		if r.err == nil && fileTime != ins.Time {
			return fmt.Errorf("gofs: %s: step %d time %d, want %d", path, ps+i, fileTime, ins.Time)
		}
		if v == formatVersion {
			for c := range ins.VertexCols {
				readColumnValues(r, &ins.VertexCols[c], verts)
			}
			for c := range ins.EdgeCols {
				readColumnValues(r, &ins.EdgeCols[c], edges)
			}
			if r.err != nil {
				return fmt.Errorf("gofs: %s: %w", path, r.err)
			}
			continue
		}
		kind := r.byteVal()
		chV := r.i32s()
		chE := r.i32s()
		if r.err != nil {
			return fmt.Errorf("gofs: %s: %w", path, r.err)
		}
		for _, x := range chV {
			if int(x) < 0 || int(x) >= t.NumVertices() {
				return fmt.Errorf("gofs: %s: changed vertex index %d out of range", path, x)
			}
		}
		for _, x := range chE {
			if int(x) < 0 || int(x) >= t.NumEdges() {
				return fmt.Errorf("gofs: %s: changed edge slot %d out of range", path, x)
			}
		}
		switch kind {
		case recSnapshot:
			for c := range ins.VertexCols {
				readColumnValues(r, &ins.VertexCols[c], verts)
			}
			for c := range ins.EdgeCols {
				readColumnValues(r, &ins.EdgeCols[c], edges)
			}
		case recDelta:
			if i == 0 {
				return fmt.Errorf("gofs: %s: delta record at pack start %d", path, ps)
			}
			// Carry the previous timestep's values forward for this bin,
			// then patch the changed subset.
			prev := instances[i-1]
			for c := range ins.VertexCols {
				copyColumnValues(&prev.VertexCols[c], &ins.VertexCols[c], verts)
				readColumnValues(r, &ins.VertexCols[c], chV)
			}
			for c := range ins.EdgeCols {
				copyColumnValues(&prev.EdgeCols[c], &ins.EdgeCols[c], edges)
				readColumnValues(r, &ins.EdgeCols[c], chE)
			}
		default:
			return fmt.Errorf("gofs: %s: unknown record kind %d at step %d", path, kind, ps+i)
		}
		if r.err != nil {
			return fmt.Errorf("gofs: %s: %w", path, r.err)
		}
		if deltas != nil && deltas[i] != nil {
			deltas[i].Verts = append(deltas[i].Verts, chV...)
			deltas[i].Edges = append(deltas[i].Edges, chE...)
		}
	}
	if err := r.verifyCRC(); err != nil {
		return fmt.Errorf("gofs: %s: %w", path, err)
	}
	return nil
}

// LoadAll materializes the entire collection in memory (small datasets and
// tests). It uses a fresh loader so the caller's cache is untouched.
func (s *Store) LoadAll() (*graph.Collection, error) {
	m := s.m()
	c := graph.NewCollection(s.template, m.T0, m.Delta)
	l := NewLoader(s)
	for step := 0; step < m.Timesteps; step++ {
		ins, err := l.Load(step)
		if err != nil {
			return nil, err
		}
		if err := c.Append(ins); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Timesteps returns the number of stored instances; together with Load it
// lets a Loader serve as a TI-BSP instance source.
func (l *Loader) Timesteps() int { return l.store.Timesteps() }
