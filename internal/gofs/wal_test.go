package gofs

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func walWith(t *testing.T, payloads ...[]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), WALName)
	w, recovered, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recovered))
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWALRoundTrip: appended payloads replay back verbatim, in order.
func TestWALRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"timestep":0}`),
		{},
		bytes.Repeat([]byte{0xAB}, 4096),
		[]byte("last"),
	}
	path := walWith(t, payloads...)
	got, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestWALTornWrite: truncating the log at every byte offset of the final
// record must recover exactly the records before it — never a partial
// record, never a panic.
func TestWALTornWrite(t *testing.T) {
	payloads := [][]byte{
		[]byte("first record payload"),
		[]byte("second, somewhat longer record payload"),
		[]byte("final record that will be torn"),
	}
	path := walWith(t, payloads...)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prefixLen := len(full) - (len(payloads[2]) + walFrameOverhead)

	for cut := prefixLen; cut <= len(full); cut++ {
		torn := filepath.Join(t.TempDir(), WALName)
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, validSize, err := ReplayWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: replay error %v", cut, err)
		}
		wantRecords := 2
		if cut == len(full) {
			wantRecords = 3
		}
		if len(got) != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantRecords)
		}
		if wantRecords == 2 && validSize != int64(prefixLen) {
			t.Fatalf("cut %d: valid prefix %d, want %d", cut, validSize, prefixLen)
		}
		// OpenWAL truncates the torn tail and accepts new appends.
		w, recovered, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(recovered) != wantRecords {
			t.Fatalf("cut %d: reopen recovered %d records", cut, len(recovered))
		}
		if err := w.Append([]byte("after recovery")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		w.Close()
		again, _, err := ReplayWAL(torn)
		if err != nil || len(again) != wantRecords+1 {
			t.Fatalf("cut %d: post-recovery replay %d records (err %v)", cut, len(again), err)
		}
	}
}

// TestWALCorruption: a flipped byte inside an earlier record stops replay
// at the record before it — corruption never yields bad payloads.
func TestWALCorruption(t *testing.T) {
	payloads := [][]byte{
		[]byte("good record"),
		[]byte("this one gets corrupted"),
		[]byte("unreachable after corruption"),
	}
	path := walWith(t, payloads...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record 2.
	off := (len(payloads[0]) + walFrameOverhead) + walHeaderLen + 3
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, validSize, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], payloads[0]) {
		t.Fatalf("replayed %d records after corruption, want only the first", len(got))
	}
	if validSize != int64(len(payloads[0])+walFrameOverhead) {
		t.Fatalf("valid prefix %d", validSize)
	}
}

// TestWALReset: resetting rewrites the log atomically; the retained
// records replay, the dropped ones do not, and appends keep working.
func TestWALReset(t *testing.T) {
	path := walWith(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 5 {
		t.Fatalf("Records = %d", w.Records())
	}
	if err := w.Reset([][]byte{{9}}); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 1 {
		t.Fatalf("Records after reset = %d", w.Records())
	}
	if err := w.Append([]byte{7}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0] != 9 || got[1][0] != 7 {
		t.Fatalf("post-reset replay = %v", got)
	}
	if err := w.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if got, size, _ := ReplayWAL(path); len(got) != 0 || size != 0 {
		t.Fatalf("empty reset left %d records / %d bytes", len(got), size)
	}
}

// FuzzWALRoundTrip fuzzes both directions of the record codec: any payload
// must round-trip bit-exactly through Append/Replay, and any byte soup
// presented as a WAL file must replay without panicking to some valid
// prefix no longer than the file.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add(bytes.Repeat([]byte{0x47, 0x6F, 0x57, 0x4C}, 8)) // magic spam
	f.Add([]byte("GoWL\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()

		// Direction 1: data as a payload.
		path := filepath.Join(dir, "rt.wal")
		w, _, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(data); err != nil {
			t.Fatal(err)
		}
		w.Close()
		got, validSize, err := ReplayWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], data) {
			t.Fatalf("payload of %d bytes did not round-trip", len(data))
		}
		if validSize != int64(len(data)+walFrameOverhead) {
			t.Fatalf("valid size %d for %d-byte payload", validSize, len(data))
		}

		// Direction 2: data as raw log bytes.
		raw := filepath.Join(dir, "raw.wal")
		if err := os.WriteFile(raw, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, size, err := ReplayWAL(raw)
		if err != nil {
			t.Fatal(err)
		}
		if size < 0 || size > int64(len(data)) {
			t.Fatalf("valid prefix %d outside file of %d bytes", size, len(data))
		}
		var total int64
		for _, r := range recs {
			total += int64(len(r)) + walFrameOverhead
		}
		if total != size {
			t.Fatalf("recovered records cover %d bytes, prefix says %d", total, size)
		}
	})
}

// TestWALGroupCommit: concurrent writers staging and syncing must all end
// durable, replay in file order, and coalesce into fewer fsyncs than
// records — the group-commit contract.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const perWriter = 8
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < perWriter; r++ {
				seq, err := w.Stage([]byte{byte(g), byte(r)})
				if err != nil {
					errs <- err
					return
				}
				if err := w.Sync(seq); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := w.Records(); got != writers*perWriter {
		t.Fatalf("Records() = %d, want %d", got, writers*perWriter)
	}
	fsyncs := w.Fsyncs()
	if fsyncs < 1 || fsyncs > writers*perWriter {
		t.Fatalf("Fsyncs() = %d, want within [1, %d]", fsyncs, writers*perWriter)
	}
	t.Logf("group commit: %d records in %d fsyncs", writers*perWriter, fsyncs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	// Per-writer record order must match stage order (writers serialize
	// inside Stage, so file order is sequence order).
	next := make([]int, writers)
	for i, p := range got {
		if len(p) != 2 {
			t.Fatalf("record %d has %d bytes", i, len(p))
		}
		g, r := int(p[0]), int(p[1])
		if r != next[g] {
			t.Fatalf("writer %d record out of order: got %d, want %d", g, r, next[g])
		}
		next[g]++
	}
}

// TestWALSyncAfterReset: a Reset supersedes staged-but-unsynced records,
// so their pending Syncs return success without another fsync.
func TestWALSyncAfterReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Stage([]byte("covered elsewhere"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatalf("Sync after Reset = %v, want nil", err)
	}
	if got := w.Fsyncs(); got != 0 {
		t.Fatalf("Fsyncs() = %d after reset-superseded sync, want 0", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALGroupWindow: a positive GroupWindow still commits correctly (the
// linger must not lose or reorder records).
func TestWALGroupWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.GroupWindow = 2 * time.Millisecond
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if err := w.Append([]byte{byte(g)}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("replayed %d records, want 8", len(got))
	}
}
