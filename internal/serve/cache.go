package serve

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of completed answers keyed by the canonical
// query key. Answers are immutable once published, so hits hand out the
// shared pointer. The key embeds the watermark the answer was computed at;
// live ingestion only appends timesteps, never rewrites published ones, so
// an entry stays permanently valid for its dataset version — queries at a
// newer head simply miss to a fresh key.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *resultEntry
}

type resultEntry struct {
	key string
	ans *Answer
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

func (c *resultCache) get(key string) (*Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*resultEntry).ans, true
}

func (c *resultCache) put(key string, ans *Answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e)
		e.Value.(*resultEntry).ans = ans
		return
	}
	c.entries[key] = c.lru.PushFront(&resultEntry{key: key, ans: ans})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*resultEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
