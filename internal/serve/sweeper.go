package serve

import (
	"context"

	"tsgraph/internal/algorithms"
)

// TDSPLookup reads one (source, target) answer out of a completed TDSP
// sweep: si indexes the batch query whose source the request named, vertex
// is the template index of the target. ok=false means the target was not
// reached by the departure.
type TDSPLookup func(si, vertex int) (arrival float64, timestep int, ok bool)

// MemeSpread is the result of one meme sweep: the global colored-vertex
// count plus the coloring timestep of each requested probe vertex (aligned
// with the probes argument; -1 means never colored).
type MemeSpread struct {
	Colored int
	ProbeAt []int
}

// Sweeper executes the three sweep kinds the scheduler batches. The
// Server's admission control, batching, result cache, and watermark
// pinning all live above this seam; a Sweeper only computes. The default
// implementation runs sweeps in-process over Options.Parts; the shard
// router implements the same interface by scattering to partition-owning
// ranks and merging their partials, which is what keeps sharded answers
// byte-identical — everything above the seam is shared code.
type Sweeper interface {
	// SweepTDSP runs one multi-source time-dependent shortest-path sweep
	// over the first watermark timesteps and returns a lookup over its
	// arrivals. Queries are canonical: sources ascending, targets sorted
	// per source.
	SweepTDSP(ctx context.Context, watermark, depart int, queries []algorithms.BatchQuery) (TDSPLookup, error)
	// SweepTopN ranks vertices by a float attribute for count timesteps
	// starting at from, n entries per timestep, over the first watermark
	// timesteps.
	SweepTopN(ctx context.Context, watermark int, attr string, n, from, count int) ([][]RankEntry, error)
	// SweepMeme runs one meme spread over the first watermark timesteps.
	// Probes are template vertex indices, sorted ascending and unique.
	SweepMeme(ctx context.Context, watermark int, tag string, probes []int) (*MemeSpread, error)
}

// localSweeper is the in-process Sweeper: sweeps run over the server's own
// resident partitions through the same algorithm entry points the offline
// tools use.
type localSweeper struct {
	s *Server
}

func (l localSweeper) SweepTDSP(_ context.Context, watermark, depart int, queries []algorithms.BatchQuery) (TDSPLookup, error) {
	s := l.s
	prog, _, err := algorithms.RunBatchTDSP(
		s.opt.Template, s.opt.Parts, queries, depart,
		boundedSource{s.sources[ClassTDSP], watermark},
		s.opt.Delta, s.opt.WeightAttr, s.cfg, nil, s.opt.Tracer)
	if err != nil {
		return nil, err
	}
	return prog.Arrival, nil
}

func (l localSweeper) SweepTopN(_ context.Context, watermark int, attr string, n, from, count int) ([][]RankEntry, error) {
	s := l.s
	steps, _, err := algorithms.RunTopNRange(
		s.opt.Template, s.opt.Parts, attr, n,
		boundedSource{s.sources[ClassTopN], watermark},
		from, count, s.cfg, nil, s.topNParallelism(count))
	if err != nil {
		return nil, err
	}
	out := make([][]RankEntry, len(steps))
	for i, vv := range steps {
		out[i] = make([]RankEntry, len(vv))
		for j, e := range vv {
			out[i][j] = RankEntry{Vertex: int64(e.Vertex), Value: e.Value}
		}
	}
	return out, nil
}

func (l localSweeper) SweepMeme(_ context.Context, watermark int, tag string, probes []int) (*MemeSpread, error) {
	s := l.s
	coloredAt, _, err := algorithms.RunMeme(
		s.opt.Template, s.opt.Parts, tag, s.opt.TweetsAttr,
		boundedSource{s.sources[ClassMeme], watermark}, s.cfg, nil)
	if err != nil {
		return nil, err
	}
	sp := &MemeSpread{ProbeAt: make([]int, len(probes))}
	for _, at := range coloredAt {
		if at >= 0 {
			sp.Colored++
		}
	}
	for i, v := range probes {
		sp.ProbeAt[i] = int(coloredAt[v])
	}
	return sp, nil
}
