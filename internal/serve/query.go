// Package serve is the online query-serving layer over a resident
// time-series graph: a bounded, admission-controlled scheduler that groups
// compatible queries into micro-batches (many TDSP sources coalesce into
// one multi-source TI-BSP sweep), a keyed result cache with single-flight
// deduplication, and an HTTP/JSON front end (see Handler). Results are
// identical to running the equivalent offline job through
// internal/algorithms, because the same entry points execute them.
package serve

import (
	"errors"
	"fmt"
	"time"

	"tsgraph/internal/graph"
	"tsgraph/internal/obs/live"
)

// Class partitions queries by execution shape; admission control and
// batching operate per class.
type Class int

const (
	// ClassTDSP is a point-to-point time-dependent shortest path query.
	ClassTDSP Class = iota
	// ClassTopN is a windowed top-N vertex ranking query.
	ClassTopN
	// ClassMeme is a meme-reachability query.
	ClassMeme

	numClasses
)

// String names the class (also the Prometheus "class" label value).
func (c Class) String() string {
	switch c {
	case ClassTDSP:
		return "tdsp"
	case ClassTopN:
		return "topn"
	case ClassMeme:
		return "meme"
	}
	return "unknown"
}

// Query is one client request, as posted to /query.
type Query struct {
	// Kind selects the query class: "tdsp", "topn", or "meme".
	Kind string `json:"kind"`

	// TDSP: earliest arrival at Target leaving Source at timestep Depart.
	Source int64 `json:"source,omitempty"`
	Target int64 `json:"target,omitempty"`
	Depart int   `json:"depart,omitempty"`

	// TopN: global top-N by float vertex attribute Attr over the instance
	// window [From, From+Count) (Count 0 = through the last instance).
	Attr  string `json:"attr,omitempty"`
	N     int    `json:"n,omitempty"`
	From  int    `json:"from,omitempty"`
	Count int    `json:"count,omitempty"`

	// Meme: how far Tag spread; Vertex, when set, asks for the timestep
	// that vertex was first colored (-1 = never).
	Tag    string `json:"tag,omitempty"`
	Vertex *int64 `json:"vertex,omitempty"`

	// DeadlineMillis bounds queueing + execution; 0 uses the server
	// default. Admission rejects queries whose estimated wait already
	// exceeds the deadline (HTTP 429 with Retry-After).
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`

	// Watermark, when positive, pins the query to the dataset prefix
	// [0, Watermark): the answer is computed as if ingestion stopped there,
	// and is byte-identical to an offline run over that prefix. 0 (the
	// default) reads the live head — the watermark published at admission.
	// Values beyond the current head are rejected (the client is ahead of
	// the server; HTTP 400).
	Watermark int `json:"watermark,omitempty"`
}

// TDSPAnswer is the response payload of a "tdsp" query.
type TDSPAnswer struct {
	Source   int64   `json:"source"`
	Target   int64   `json:"target"`
	Depart   int     `json:"depart"`
	Reached  bool    `json:"reached"`
	Arrival  float64 `json:"arrival"`  // earliest arrival time; 0 when unreached
	Timestep int     `json:"timestep"` // timestep finalized in; -1 when unreached
}

// RankEntry is one ranked vertex of a "topn" answer.
type RankEntry struct {
	Vertex int64   `json:"vertex"`
	Value  float64 `json:"value"`
}

// TopNAnswer is the response payload of a "topn" query. Steps[i] is the
// global ranking of timestep From+i.
type TopNAnswer struct {
	Attr  string        `json:"attr"`
	N     int           `json:"n"`
	From  int           `json:"from"`
	Count int           `json:"count"`
	Steps [][]RankEntry `json:"steps"`
}

// MemeAnswer is the response payload of a "meme" query.
type MemeAnswer struct {
	Tag     string `json:"tag"`
	Colored int    `json:"colored"` // vertices the meme ever reached
	Vertex  *int64 `json:"vertex,omitempty"`
	// ColoredAt is the timestep Vertex was first colored; -1 = never.
	ColoredAt *int `json:"colored_at,omitempty"`
}

// Answer is the response envelope; exactly one payload field is set.
type Answer struct {
	Kind string `json:"kind"`
	// Watermark is the dataset prefix the answer was computed over (the
	// pinned watermark, or the live head captured at admission). Re-posting
	// the query with this value pinned reproduces the answer exactly even
	// after ingestion has advanced the head.
	Watermark int         `json:"watermark"`
	TDSP      *TDSPAnswer `json:"tdsp,omitempty"`
	TopN      *TopNAnswer `json:"topn,omitempty"`
	Meme      *MemeAnswer `json:"meme,omitempty"`
}

// ErrBadQuery wraps validation failures (HTTP 400).
var ErrBadQuery = errors.New("serve: bad query")

// ErrDraining rejects submissions after drain started (HTTP 503).
var ErrDraining = errors.New("serve: draining")

// RejectError is an admission-control rejection (HTTP 429): the queue is
// full or the deadline cannot be met. RetryAfter estimates when capacity
// frees up.
type RejectError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: rejected: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// request is a normalized, admitted query: template indices resolved, the
// canonical cache key and batch key computed.
type request struct {
	class    Class
	key      string // canonical identity (result cache / single-flight)
	batchKey string // compatibility group for micro-batching

	// watermark is the resolved dataset prefix this query reads: the pinned
	// value, or the head at admission. Part of key and batchKey, so cached
	// answers and coalesced sweeps never mix dataset versions.
	watermark int

	// tdsp
	srcIdx, tgtIdx, depart int
	sourceID, targetID     int64
	// topn
	attr    string
	n, from int
	count   int
	// meme
	tag      string
	probeIdx int // template index of the probed vertex; -1 = none
	probeID  *int64

	deadline time.Time
	enq      time.Time
	done     chan struct{}
	ans      *Answer
	err      error

	// live is the query's lifecycle trace (nil-safe); workers record the
	// queue/sweep stages and the coalescing decision on it.
	live *live.Query
}

// normalize validates a query against the resident template and computes
// its canonical keys. The key excludes the deadline: two queries differing
// only in deadline are the same work.
func (s *Server) normalize(q Query) (*request, error) {
	r := &request{probeIdx: -1}
	head := s.opt.Source.Timesteps()
	steps := head
	if q.Watermark < 0 {
		return nil, fmt.Errorf("%w: negative watermark %d", ErrBadQuery, q.Watermark)
	}
	if q.Watermark > 0 {
		if q.Watermark > head {
			return nil, fmt.Errorf("%w: watermark %d beyond head %d", ErrBadQuery, q.Watermark, head)
		}
		steps = q.Watermark
	}
	r.watermark = steps
	t := s.opt.Template
	switch q.Kind {
	case "tdsp":
		r.class = ClassTDSP
		r.srcIdx = t.VertexIndex(graph.VertexID(q.Source))
		r.tgtIdx = t.VertexIndex(graph.VertexID(q.Target))
		if r.srcIdx < 0 {
			return nil, fmt.Errorf("%w: unknown source vertex %d", ErrBadQuery, q.Source)
		}
		if r.tgtIdx < 0 {
			return nil, fmt.Errorf("%w: unknown target vertex %d", ErrBadQuery, q.Target)
		}
		if q.Depart < 0 || q.Depart >= steps {
			return nil, fmt.Errorf("%w: departure timestep %d outside [0,%d)", ErrBadQuery, q.Depart, steps)
		}
		r.depart = q.Depart
		r.sourceID, r.targetID = q.Source, q.Target
		r.key = fmt.Sprintf("tdsp?s=%d&t=%d&d=%d&w=%d", q.Source, q.Target, q.Depart, steps)
		// Same departure timestep and dataset version -> same sweep window:
		// batchable.
		r.batchKey = fmt.Sprintf("tdsp@%d@w%d", q.Depart, steps)
	case "topn":
		r.class = ClassTopN
		i := t.VertexSchema().Index(q.Attr)
		if i < 0 || t.VertexSchema().Type(i) != graph.TFloat {
			return nil, fmt.Errorf("%w: no float vertex attribute %q", ErrBadQuery, q.Attr)
		}
		if q.N < 1 {
			return nil, fmt.Errorf("%w: top-N needs n >= 1, got %d", ErrBadQuery, q.N)
		}
		if q.From < 0 || q.From >= steps {
			return nil, fmt.Errorf("%w: window start %d outside [0,%d)", ErrBadQuery, q.From, steps)
		}
		count := q.Count
		if count <= 0 || q.From+count > steps {
			count = steps - q.From
		}
		r.attr, r.n, r.from, r.count = q.Attr, q.N, q.From, count
		r.key = fmt.Sprintf("topn?attr=%s&n=%d&from=%d&count=%d&w=%d", q.Attr, q.N, q.From, count, steps)
		// Identical windows only; distinct top-N queries don't share sweeps.
		r.batchKey = r.key
	case "meme":
		r.class = ClassMeme
		if q.Tag == "" {
			return nil, fmt.Errorf("%w: meme query needs a tag", ErrBadQuery)
		}
		r.tag = q.Tag
		if q.Vertex != nil {
			r.probeIdx = t.VertexIndex(graph.VertexID(*q.Vertex))
			if r.probeIdx < 0 {
				return nil, fmt.Errorf("%w: unknown vertex %d", ErrBadQuery, *q.Vertex)
			}
			v := *q.Vertex
			r.probeID = &v
			r.key = fmt.Sprintf("meme?tag=%q&v=%d&w=%d", q.Tag, v, steps)
		} else {
			r.key = fmt.Sprintf("meme?tag=%q&w=%d", q.Tag, steps)
		}
		// One spread computation answers every probe of the same tag at the
		// same dataset version.
		r.batchKey = fmt.Sprintf("meme@%q@w%d", q.Tag, steps)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadQuery, q.Kind)
	}
	d := s.opt.DefaultDeadline
	if q.DeadlineMillis > 0 {
		d = time.Duration(q.DeadlineMillis) * time.Millisecond
	}
	r.enq = time.Now()
	if d > 0 {
		r.deadline = r.enq.Add(d)
	}
	r.done = make(chan struct{})
	return r, nil
}
