package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/chaos"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
	"tsgraph/internal/obs/live"
)

// TestAnomalyBundleEndToEnd is the self-diagnosis acceptance path: a
// chaos-delayed query blows the SLO, the burn-rate detector trips on
// evidence, the resulting bundle is listed and downloaded over real HTTP,
// and offline triage (the tsdiag path) recovers the detector evidence, a
// parseable CPU profile, and the slow query's flight record from the
// archive alone.
func TestAnomalyBundleEndToEnd(t *testing.T) {
	g, parts, src := fixture(t)
	inj, err := chaos.Parse("gofs.load=at:1")
	if err != nil {
		t.Fatal(err)
	}
	slowSrc := &delaySource{src: src, inj: inj, delay: 150 * time.Millisecond}

	tracer := obs.NewTracer(0)
	tracer.Enable()
	// Fixed-epoch clock: SLO slot rotation is deterministic relative to the
	// test's start while real elapsed time still measures the chaos stall.
	epoch := time.Unix(1_700_000_000, 0)
	realStart := time.Now()
	rec := live.NewRecorder(live.Config{
		Classes:        ClassNames(),
		SlowThreshold:  50 * time.Millisecond,
		SLOTarget:      20 * time.Millisecond,
		SLOErrorBudget: 0.01,
		Seed:           1,
		Now:            func() time.Time { return epoch.Add(time.Since(realStart)) },
	})
	opt := baseOptions(g, parts, slowSrc)
	opt.Tracer = tracer
	opt.Live = rec
	s := newServer(t, opt)

	reg := obs.NewRegistry(tracer)
	reg.Register(s)
	ring := diag.NewLogRing(64)
	bundler := &diag.Bundler{
		Dir: t.TempDir(), Tool: "tsserve",
		ProfileDuration: 100 * time.Millisecond,
		Registry:        reg,
		LogRing:         ring,
	}
	mux := NewMux(s, reg, diag.Endpoints(bundler)...)
	bundler.Sections = []diag.Section{
		diag.HandlerSection("flight.json", mux, "/debug/flight"),
		diag.HandlerSection("stats.json", mux, "/stats"),
	}
	monitor := &diag.Monitor{Detectors: []*diag.Detector{
		{Name: "slo_burn", Signal: rec.SLO().BurnRate, Threshold: 1},
	}}

	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The first query's instance load eats the injected 150ms stall: over
	// the 20ms SLO target → a bad request against a 1% budget. The second
	// is fast and healthy — burn rate 0.5/0.01 = 50.
	resp, _ := postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 0, Target: 63})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow query: %s", resp.Status)
	}
	slowID := resp.Header.Get("X-Tsserve-Query-Id")
	resp, _ = postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 0, Target: 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast query: %s", resp.Status)
	}

	// One detector round must trip on the burn, with evidence.
	evs := monitor.Evaluate()
	if len(evs) != 1 || evs[0].Detector != "slo_burn" || evs[0].Value <= 1 {
		t.Fatalf("detector round = %+v, want slo_burn over threshold", evs)
	}
	if _, err := bundler.Capture(diag.Trigger{Cause: "detector", Evidence: evs}); err != nil {
		t.Fatal(err)
	}

	// The bundle is discoverable and downloadable over the same mux the
	// daemon serves queries on.
	r, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Bundles []diag.BundleInfo `json:"bundles"`
	}
	if err := json.NewDecoder(r.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(listed.Bundles) != 1 {
		t.Fatalf("listed %d bundles, want 1", len(listed.Bundles))
	}
	r, err = http.Get(ts.URL + "/debug/bundle?name=" + listed.Bundles[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	downloaded := filepath.Join(t.TempDir(), listed.Bundles[0].Name)
	f, err := os.Create(downloaded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(f, r.Body); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	f.Close()

	// Offline triage of the downloaded archive — exactly what tsdiag does.
	tri, err := diag.Summarize(downloaded)
	if err != nil {
		t.Fatal(err)
	}
	if tri.Meta.Cause != "detector" || len(tri.Meta.Evidence) != 1 || tri.Meta.Evidence[0].Detector != "slo_burn" {
		t.Fatalf("triage meta = %+v, want slo_burn detector evidence", tri.Meta)
	}
	if tri.CPU == nil || len(tri.CPU.SampleTypes) == 0 {
		t.Fatal("bundle CPU profile missing or unparseable")
	}
	found := false
	for _, q := range tri.SlowestQueries {
		if q.ID == slowID {
			found = true
			if q.LatencyMS < 100 {
				t.Fatalf("slow query %s triaged with latency %.1fms, want >= 100", slowID, q.LatencyMS)
			}
		}
	}
	if !found {
		t.Fatalf("slow query %s not in triaged flight records: %+v", slowID, tri.SlowestQueries)
	}

	var sb strings.Builder
	tri.Render(&sb)
	out := sb.String()
	for _, want := range []string{"slo_burn", slowID, "trigger: detector"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered triage missing %q:\n%s", want, out)
		}
	}
}
