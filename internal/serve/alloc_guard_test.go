// Exact allocation counting is skipped under the race detector, whose
// instrumentation can add bookkeeping allocations.
//go:build !race

package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tsgraph/internal/obs/live"
)

// allocBudget is the serving hot path's allocation ceiling: a result-cache
// hit served over HTTP with the live recorder on, net of test-harness
// (httptest request/recorder) allocations. Structured request logging and
// the diag detectors must stay off this path — slog.Enabled gates attr
// construction, and detector evaluation runs on its own goroutine.
const allocBudget = 31

// TestAllocGuard pins the per-query allocation cost of the cached serving
// path. If this fails after a change, something joined the hot path —
// check logRequest/logBatch attr construction and the live recorder first.
func TestAllocGuard(t *testing.T) {
	g, parts, src := fixture(t)
	opt := baseOptions(g, parts, src)
	opt.ResultCacheSize = 16
	opt.Live = live.NewRecorder(live.Config{Classes: ClassNames(), SlowThreshold: time.Hour})
	s := newServer(t, opt)
	mux := NewMux(s, nil)
	body := []byte(`{"kind":"tdsp","source":0,"target":63}`)

	query := func() {
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("query: %d", w.Code)
		}
	}
	query() // warm the result cache; the guard measures the hit path

	noop := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	harness := func() {
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		w := httptest.NewRecorder()
		noop.ServeHTTP(w, req)
	}

	total := testing.AllocsPerRun(500, query)
	base := testing.AllocsPerRun(500, harness)
	if got := total - base; got > allocBudget {
		t.Fatalf("cached query path allocates %.1f/op (%.1f total - %.1f harness), budget %d",
			got, total, base, allocBudget)
	}
}
