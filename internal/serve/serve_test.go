package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

const (
	fixSteps = 8
	fixDelta = 60
	fixMeme  = "#storm"
)

// fixture builds a small road network whose collection carries latencies,
// loads, and SIR tweets — every query class has data (mirrors tsgen -data
// both).
func fixture(tb testing.TB) (*graph.Template, []*subgraph.PartitionData, core.MemorySource) {
	tb.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, RemoveFrac: 0.1, Seed: 7})
	sir, err := gen.SIRTweets(g, gen.SIRConfig{
		Timesteps: fixSteps, T0: 0, Delta: fixDelta,
		Memes: []string{fixMeme}, SeedsPerMeme: 2, HitProb: 0.35, Seed: 9,
	})
	if err != nil {
		tb.Fatal(err)
	}
	c := sir.Collection
	lat, err := gen.RandomLatencies(g, gen.LatencyConfig{
		Timesteps: fixSteps, T0: 0, Delta: fixDelta, Min: 1, Max: 50, Seed: 10,
	})
	if err != nil {
		tb.Fatal(err)
	}
	li := g.EdgeSchema().Index(gen.AttrLatency)
	for s := 0; s < fixSteps; s++ {
		c.Instance(s).EdgeCols[li] = lat.Instance(s).EdgeCols[li]
	}
	if err := gen.RandomLoads(c, 11, 0, 100); err != nil {
		tb.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 11}).Partition(g, 3)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		tb.Fatal(err)
	}
	return g, parts, core.MemorySource{C: c}
}

func baseOptions(g *graph.Template, parts []*subgraph.PartitionData, src core.InstanceSource) Options {
	return Options{
		Template: g, Parts: parts, Source: src,
		Delta: fixDelta, WeightAttr: gen.AttrLatency, TweetsAttr: gen.AttrTweets,
	}
}

func newServer(tb testing.TB, opt Options) *Server {
	tb.Helper()
	s, err := New(opt)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = s.Close() })
	return s
}

// offlineAnswer computes the expected answer of one query by calling the
// algorithm entry points directly, the way the offline tools do.
func offlineAnswer(tb testing.TB, g *graph.Template, parts []*subgraph.PartitionData, src core.InstanceSource, q Query) *Answer {
	tb.Helper()
	ans := offlineAnswerPayload(tb, g, parts, src, q)
	// The server stamps every answer with the dataset version it read: the
	// pinned watermark, or the full source for an unpinned query.
	ans.Watermark = src.Timesteps()
	if q.Watermark > 0 {
		ans.Watermark = q.Watermark
	}
	return ans
}

func offlineAnswerPayload(tb testing.TB, g *graph.Template, parts []*subgraph.PartitionData, src core.InstanceSource, q Query) *Answer {
	tb.Helper()
	switch q.Kind {
	case "tdsp":
		si := g.VertexIndex(graph.VertexID(q.Source))
		ti := g.VertexIndex(graph.VertexID(q.Target))
		prog, _, err := algorithms.RunBatchTDSP(g, parts,
			[]algorithms.BatchQuery{{Source: si, Targets: []int{ti}}},
			q.Depart, src, fixDelta, gen.AttrLatency, bsp.Config{}, nil, nil)
		if err != nil {
			tb.Fatal(err)
		}
		a := &TDSPAnswer{Source: q.Source, Target: q.Target, Depart: q.Depart, Timestep: -1}
		if arr, at, ok := prog.Arrival(0, ti); ok {
			a.Reached, a.Arrival, a.Timestep = true, arr, at
		}
		return &Answer{Kind: "tdsp", TDSP: a}
	case "topn":
		steps, _, err := algorithms.RunTopNRange(g, parts, q.Attr, q.N, src,
			q.From, q.Count, bsp.Config{}, nil, 1)
		if err != nil {
			tb.Fatal(err)
		}
		out := make([][]RankEntry, len(steps))
		for i, vv := range steps {
			out[i] = make([]RankEntry, len(vv))
			for j, e := range vv {
				out[i][j] = RankEntry{Vertex: int64(e.Vertex), Value: e.Value}
			}
		}
		return &Answer{Kind: "topn", TopN: &TopNAnswer{
			Attr: q.Attr, N: q.N, From: q.From, Count: len(steps), Steps: out,
		}}
	case "meme":
		coloredAt, _, err := algorithms.RunMeme(g, parts, q.Tag, gen.AttrTweets, src, bsp.Config{}, nil)
		if err != nil {
			tb.Fatal(err)
		}
		colored := 0
		for _, at := range coloredAt {
			if at >= 0 {
				colored++
			}
		}
		a := &MemeAnswer{Tag: q.Tag, Colored: colored}
		if q.Vertex != nil {
			at := int(coloredAt[g.VertexIndex(graph.VertexID(*q.Vertex))])
			v := *q.Vertex
			a.Vertex, a.ColoredAt = &v, &at
		}
		return &Answer{Kind: "meme", Meme: a}
	}
	tb.Fatalf("unknown kind %q", q.Kind)
	return nil
}

func vptr(v int64) *int64 { return &v }

// mixedQueries is the replay workload: every class, several departure
// timesteps, duplicates included.
func mixedQueries() []Query {
	return []Query{
		{Kind: "tdsp", Source: 0, Target: 63},
		{Kind: "tdsp", Source: 0, Target: 12},
		{Kind: "tdsp", Source: 17, Target: 40},
		{Kind: "tdsp", Source: 40, Target: 5, Depart: 2},
		{Kind: "tdsp", Source: 9, Target: 54, Depart: 2},
		{Kind: "tdsp", Source: 0, Target: 63}, // duplicate
		{Kind: "topn", Attr: gen.AttrLoad, N: 5, From: 1, Count: 3},
		{Kind: "topn", Attr: gen.AttrLoad, N: 3},
		{Kind: "meme", Tag: fixMeme},
		{Kind: "meme", Tag: fixMeme, Vertex: vptr(33)},
	}
}

// TestServedAnswersMatchOffline replays a mixed workload concurrently
// against a batching, caching server and requires every response to be
// byte-identical to the offline computation.
func TestServedAnswersMatchOffline(t *testing.T) {
	g, parts, src := fixture(t)
	queries := mixedQueries()
	want := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(offlineAnswer(t, g, parts, src, q))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = b
	}

	opt := baseOptions(g, parts, src)
	opt.MaxBatch = 8
	opt.Workers = 2
	opt.ResultCacheSize = 64
	s := newServer(t, opt)

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q Query) {
				defer wg.Done()
				ans, err := s.Submit(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				got, err := json.Marshal(ans)
				if err != nil {
					errs <- err
					return
				}
				if string(got) != string(want[i]) {
					errs <- errors.New("query " + queries[i].Kind + " diverged:\n got " + string(got) + "\nwant " + string(want[i]))
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Anchor the batch path to the canonical single-source tool: the served
	// arrival must equal RunTDSP's.
	full, _, err := algorithms.RunTDSP(g, parts, 0, src, fixDelta, gen.AttrLatency, bsp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := s.Submit(context.Background(), Query{Kind: "tdsp", Source: 0, Target: 63})
	if err != nil {
		t.Fatal(err)
	}
	if ans.TDSP.Reached && math.Abs(ans.TDSP.Arrival-full[63]) > 1e-9 {
		t.Fatalf("served arrival %v, offline RunTDSP %v", ans.TDSP.Arrival, full[63])
	}
	if !ans.TDSP.Reached && !math.IsInf(full[63], 1) {
		t.Fatalf("served unreached but offline arrival %v", full[63])
	}
}

// gatedSource blocks instance loads until released, making scheduler states
// (busy worker, queued backlog) deterministic in tests.
type gatedSource struct {
	src     core.MemorySource
	entered chan struct{} // closed when the first Load begins
	release chan struct{} // loads proceed once closed
	once    sync.Once
}

func newGatedSource(src core.MemorySource) *gatedSource {
	return &gatedSource{src: src, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedSource) Timesteps() int { return g.src.Timesteps() }

func (g *gatedSource) Load(ts int) (*graph.Instance, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.src.Load(ts)
}

func waitFor(tb testing.TB, cond func() bool, msg string) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			tb.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchingCoalescesCompatibleQueries pins the tentpole behavior: while
// the single worker is busy, 16 same-departure TDSP queries pile up and
// are answered by ONE additional multi-source sweep (2 sweeps for 17
// queries), with answers matching the offline runs.
func TestBatchingCoalescesCompatibleQueries(t *testing.T) {
	g, parts, src := fixture(t)
	gate := newGatedSource(src)
	opt := baseOptions(g, parts, gate)
	opt.Workers = 1
	opt.MaxBatch = 32
	s := newServer(t, opt)

	targets := []int64{63, 12, 40, 5, 54, 33, 20, 61, 7, 28, 35, 46, 51, 10, 18, 26}
	type result struct {
		ans *Answer
		err error
	}
	results := make([]result, len(targets)+1)
	var wg sync.WaitGroup
	submit := func(slot int, q Query) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ans, err := s.Submit(context.Background(), q)
			results[slot] = result{ans, err}
		}()
	}

	// Occupy the only worker; it blocks inside the gated instance load.
	submit(0, Query{Kind: "tdsp", Source: 0, Target: 63})
	<-gate.entered
	// Pile compatible queries (same departure timestep) into the queue.
	for i, tgt := range targets {
		submit(i+1, Query{Kind: "tdsp", Source: int64((i % 3) * 17), Target: tgt})
	}
	waitFor(t, func() bool { return s.queues[ClassTDSP].depth() == len(targets) },
		"backlog never reached the queue")
	close(gate.release)
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("query %d: %v", i, r.err)
		}
	}
	if got := s.Metrics().Sweeps(ClassTDSP); got != 2 {
		t.Fatalf("17 queries ran %d sweeps, want 2 (1 head-of-line + 1 coalesced)", got)
	}
	if got := s.Metrics().BatchedQueries(); got != int64(len(targets))+1 {
		t.Fatalf("batched queries = %d, want %d", got, len(targets)+1)
	}

	// Coalesced answers are still the offline answers.
	for _, slot := range []int{1, 8, 16} {
		q := Query{Kind: "tdsp", Source: int64(((slot - 1) % 3) * 17), Target: targets[slot-1]}
		wantB, _ := json.Marshal(offlineAnswer(t, g, parts, src, q))
		gotB, _ := json.Marshal(results[slot].ans)
		if string(gotB) != string(wantB) {
			t.Fatalf("coalesced answer diverged:\n got %s\nwant %s", gotB, wantB)
		}
	}
}

// TestResultCacheAndSingleFlight asserts the two cache tiers: a warm hit
// answers without any sweep, and identical concurrent queries share one
// execution.
func TestResultCacheAndSingleFlight(t *testing.T) {
	g, parts, src := fixture(t)
	gate := newGatedSource(src)
	opt := baseOptions(g, parts, gate)
	opt.Workers = 1
	opt.MaxBatch = 1
	opt.ResultCacheSize = 16
	s := newServer(t, opt)

	q := Query{Kind: "tdsp", Source: 0, Target: 63}
	var wg sync.WaitGroup
	answers := make([]*Answer, 3)
	errs := make([]error, 3)
	wg.Add(1)
	go func() { defer wg.Done(); answers[0], errs[0] = s.Submit(context.Background(), q) }()
	<-gate.entered
	wg.Add(1)
	go func() { defer wg.Done(); answers[1], errs[1] = s.Submit(context.Background(), q) }()
	waitFor(t, func() bool { return s.Metrics().FlightJoins(ClassTDSP) == 1 },
		"duplicate query never joined the in-flight leader")
	close(gate.release)
	wg.Wait()

	m := s.Metrics()
	if m.Sweeps(ClassTDSP) != 1 {
		t.Fatalf("identical concurrent queries ran %d sweeps, want 1", m.Sweeps(ClassTDSP))
	}
	if m.ResultHits(ClassTDSP) != 0 || m.ResultMisses(ClassTDSP) != 2 {
		t.Fatalf("cold counters off: hits=%d misses=%d", m.ResultHits(ClassTDSP), m.ResultMisses(ClassTDSP))
	}

	// Warm hit: no new sweep, hit counter moves.
	answers[2], errs[2] = s.Submit(context.Background(), q)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if m.Sweeps(ClassTDSP) != 1 {
		t.Fatalf("warm hit ran a sweep: %d total", m.Sweeps(ClassTDSP))
	}
	if m.ResultHits(ClassTDSP) != 1 {
		t.Fatalf("warm hit not counted: hits=%d", m.ResultHits(ClassTDSP))
	}
	a0, _ := json.Marshal(answers[0])
	for i := 1; i < 3; i++ {
		ai, _ := json.Marshal(answers[i])
		if string(ai) != string(a0) {
			t.Fatalf("answer %d diverged from leader: %s vs %s", i, ai, a0)
		}
	}
}

// TestAdmissionControl covers both rejection modes: a full queue and a
// deadline the estimated wait already exceeds.
func TestAdmissionControl(t *testing.T) {
	g, parts, src := fixture(t)
	gate := newGatedSource(src)
	opt := baseOptions(g, parts, gate)
	opt.Workers = 1
	opt.MaxBatch = 1
	opt.QueueCap = 2
	s := newServer(t, opt)

	var wg sync.WaitGroup
	launch := func(q Query) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), q)
			if err != nil {
				t.Errorf("queued query failed: %v", err)
			}
		}()
	}
	launch(Query{Kind: "tdsp", Source: 0, Target: 63})
	<-gate.entered
	launch(Query{Kind: "tdsp", Source: 0, Target: 12})
	launch(Query{Kind: "tdsp", Source: 0, Target: 40})
	waitFor(t, func() bool { return s.queues[ClassTDSP].depth() == 2 }, "backlog never built")

	_, err := s.Submit(context.Background(), Query{Kind: "tdsp", Source: 0, Target: 5})
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("over-capacity submit returned %v, want RejectError", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("rejection carries no retry hint: %+v", rej)
	}

	// A 1ms deadline can't survive the default 50ms estimate.
	_, err = s.Submit(context.Background(), Query{Kind: "topn", Attr: gen.AttrLoad, N: 3, DeadlineMillis: 1})
	if !errors.As(err, &rej) {
		t.Fatalf("unmeetable deadline returned %v, want RejectError", err)
	}

	close(gate.release)
	wg.Wait()
}

// TestDrain: queued work completes, new work is refused, workers exit.
func TestDrain(t *testing.T) {
	g, parts, src := fixture(t)
	gate := newGatedSource(src)
	opt := baseOptions(g, parts, gate)
	opt.Workers = 1
	opt.MaxBatch = 8
	s := newServer(t, opt)

	var wg sync.WaitGroup
	answers := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, answers[i] = s.Submit(context.Background(), Query{Kind: "tdsp", Source: 0, Target: int64(10 + i)})
		}(i)
	}
	<-gate.entered
	waitFor(t, func() bool { return s.queues[ClassTDSP].depth() == 2 }, "backlog never built")

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, s.Draining, "drain flag never set")

	if _, err := s.Submit(context.Background(), Query{Kind: "meme", Tag: fixMeme}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain returned %v, want ErrDraining", err)
	}

	close(gate.release)
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, err := range answers {
		if err != nil {
			t.Fatalf("queued query %d dropped during drain: %v", i, err)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g, parts, src := fixture(t)
	s := newServer(t, baseOptions(g, parts, src))
	bad := []Query{
		{Kind: "warp", Source: 0, Target: 1},
		{Kind: "tdsp", Source: 9999, Target: 1},
		{Kind: "tdsp", Source: 0, Target: 9999},
		{Kind: "tdsp", Source: 0, Target: 1, Depart: fixSteps},
		{Kind: "topn", Attr: "nope", N: 3},
		{Kind: "topn", Attr: gen.AttrTweets, N: 3}, // not a float attribute
		{Kind: "topn", Attr: gen.AttrLoad, N: 0},
		{Kind: "topn", Attr: gen.AttrLoad, N: 3, From: fixSteps},
		{Kind: "meme"},
		{Kind: "meme", Tag: fixMeme, Vertex: vptr(9999)},
	}
	for _, q := range bad {
		if _, err := s.Submit(context.Background(), q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("query %+v returned %v, want ErrBadQuery", q, err)
		}
	}
	// Count normalization: explicit overlong window clamps to the source.
	ans, err := s.Submit(context.Background(), Query{Kind: "topn", Attr: gen.AttrLoad, N: 2, From: 6, Count: 99})
	if err != nil {
		t.Fatal(err)
	}
	if ans.TopN.Count != 2 || len(ans.TopN.Steps) != 2 {
		t.Fatalf("window clamp: count=%d steps=%d, want 2", ans.TopN.Count, len(ans.TopN.Steps))
	}
}

// TestWatermarkPinning: a query pinned to watermark W answers exactly as
// an offline run over the dataset's first W timesteps — the contract that
// makes answers reproducible while live ingestion advances the head — and
// the stamped watermark distinguishes pinned from live-head answers.
func TestWatermarkPinning(t *testing.T) {
	g, parts, src := fixture(t)
	s := newServer(t, baseOptions(g, parts, src))
	const pin = 5
	prefix := boundedSource{src, pin}

	queries := []Query{
		{Kind: "tdsp", Source: 0, Target: 63, Depart: 2, Watermark: pin},
		{Kind: "topn", Attr: gen.AttrLoad, N: 3, From: 1, Count: 0, Watermark: pin},
		{Kind: "meme", Tag: fixMeme, Watermark: pin},
	}
	for _, q := range queries {
		want, err := json.Marshal(offlineAnswer(t, g, parts, prefix, q))
		if err != nil {
			t.Fatal(err)
		}
		ans, err := s.Submit(context.Background(), q)
		if err != nil {
			t.Fatalf("%s pinned: %v", q.Kind, err)
		}
		got, err := json.Marshal(ans)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s pinned at %d diverged:\n got %s\nwant %s", q.Kind, pin, got, want)
		}
		if ans.Watermark != pin {
			t.Errorf("%s pinned answer watermark = %d, want %d", q.Kind, ans.Watermark, pin)
		}
	}

	// An unpinned query reads the live head and says so.
	ans, err := s.Submit(context.Background(), Query{Kind: "meme", Tag: fixMeme})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Watermark != fixSteps {
		t.Errorf("live answer watermark = %d, want %d", ans.Watermark, fixSteps)
	}

	// Validation: beyond the head or negative is the client's error.
	for _, w := range []int{fixSteps + 1, -1} {
		_, err := s.Submit(context.Background(), Query{Kind: "meme", Tag: fixMeme, Watermark: w})
		if !errors.Is(err, ErrBadQuery) {
			t.Errorf("watermark %d: err = %v, want ErrBadQuery", w, err)
		}
	}

	// Pinning constrains per-query validation: a departure inside the
	// dataset but outside the pinned prefix is rejected.
	_, err = s.Submit(context.Background(), Query{Kind: "tdsp", Source: 0, Target: 63, Depart: pin, Watermark: pin})
	if !errors.Is(err, ErrBadQuery) {
		t.Errorf("depart beyond pin: err = %v, want ErrBadQuery", err)
	}
}
