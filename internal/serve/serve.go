package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// Options configures a Server over one resident time-series graph.
type Options struct {
	// Template, Parts and Source are the resident graph: template and
	// partitioning loaded once, instances behind Source (typically a
	// gofs.InstanceCache so hot packs stay decoded).
	Template *graph.Template
	Parts    []*subgraph.PartitionData
	Source   core.InstanceSource

	// Delta is the collection's timestep period; WeightAttr the edge
	// attribute TDSP minimizes over; TweetsAttr the vertex attribute meme
	// queries scan ("" disables meme queries).
	Delta      float64
	WeightAttr string
	TweetsAttr string

	// Cores bounds the BSP engine's per-job parallelism (0 = engine
	// default).
	Cores int

	// MaxBatch caps how many compatible queries one sweep may answer
	// (1 disables coalescing). BatchLinger, when positive, holds a short
	// batch open briefly so concurrent queries can join it.
	MaxBatch    int
	BatchLinger time.Duration

	// QueueCap bounds each class queue; submissions beyond it are
	// rejected with HTTP 429. Workers is the number of concurrent sweep
	// executors per class.
	QueueCap int
	Workers  int

	// ResultCacheSize bounds the keyed result cache (0 disables it, and
	// with it single-flight deduplication).
	ResultCacheSize int

	// DefaultDeadline applies to queries that don't carry their own.
	DefaultDeadline time.Duration

	// Tracer, when active, receives query and batch spans.
	Tracer *obs.Tracer

	// InstanceStats, when set, surfaces the instance-cache counters in
	// /stats and /metrics.
	InstanceStats func() gofs.CacheStats
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxBatch < 1 {
		out.MaxBatch = 1
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 256
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.DefaultDeadline <= 0 {
		out.DefaultDeadline = 30 * time.Second
	}
	return out
}

// flight is one in-flight computation of a keyed query; late arrivals with
// the same key wait on done instead of queueing duplicate work.
type flight struct {
	done chan struct{}
	ans  *Answer
	err  error
}

// Server answers online queries over one resident time-series graph. The
// graph is loaded once; queries are admission-controlled, coalesced into
// micro-batches per class, executed through the same algorithm entry
// points the offline tools use, and cached by canonical key.
type Server struct {
	opt     Options
	cfg     bsp.Config
	metrics *Metrics
	results *resultCache

	queues   [numClasses]*classQueue
	workerWG sync.WaitGroup

	drainingFlag atomic.Bool

	inflightMu sync.Mutex
	inflight   map[string]*flight

	queryID atomic.Int64
}

// New validates the options and starts the per-class worker pool.
func New(opt Options) (*Server, error) {
	if opt.Template == nil || len(opt.Parts) == 0 || opt.Source == nil {
		return nil, errors.New("serve: Template, Parts and Source are required")
	}
	if opt.Source.Timesteps() == 0 {
		return nil, errors.New("serve: source has no instances")
	}
	if opt.Delta <= 0 {
		return nil, fmt.Errorf("serve: delta must be positive, got %v", opt.Delta)
	}
	if opt.WeightAttr != "" && opt.Template.EdgeSchema().Index(opt.WeightAttr) < 0 {
		return nil, fmt.Errorf("serve: template lacks edge attribute %q", opt.WeightAttr)
	}
	if opt.TweetsAttr != "" && opt.Template.VertexSchema().Index(opt.TweetsAttr) < 0 {
		return nil, fmt.Errorf("serve: template lacks vertex attribute %q", opt.TweetsAttr)
	}
	s := &Server{
		opt:      opt.withDefaults(),
		metrics:  newMetrics(),
		inflight: make(map[string]*flight),
	}
	s.cfg = bsp.Config{CoresPerHost: s.opt.Cores}
	s.results = newResultCache(s.opt.ResultCacheSize)
	for c := Class(0); c < numClasses; c++ {
		s.queues[c] = newClassQueue()
		for w := 0; w < s.opt.Workers; w++ {
			s.workerWG.Add(1)
			go s.worker(c)
		}
	}
	return s, nil
}

// Metrics exposes the server's counters (read-only use).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Timesteps returns the number of instances the resident graph holds.
func (s *Server) Timesteps() int { return s.opt.Source.Timesteps() }

// Template returns the resident template.
func (s *Server) Template() *graph.Template { return s.opt.Template }

// Submit answers one query, blocking until it completes, is rejected, or
// ctx is cancelled. Errors unwrap to ErrBadQuery, ErrDraining, or
// *RejectError; anything else is an execution failure.
func (s *Server) Submit(ctx context.Context, q Query) (*Answer, error) {
	req, err := s.normalize(q)
	if err != nil {
		s.metrics.bad.Add(1)
		return nil, err
	}
	start := time.Now()
	ans, err := s.resolve(ctx, req)
	dur := time.Since(start)
	if tr := s.opt.Tracer; tr.Active() {
		tr.RecordSpan(obs.SpanQuery, -1, int32(req.class), -1, s.queryID.Add(1), start, dur)
	}
	var rej *RejectError
	switch {
	case err == nil:
		s.metrics.ok[req.class].Add(1)
		s.metrics.lat[req.class].add(dur)
	case errors.As(err, &rej):
		s.metrics.rejected[req.class].Add(1)
	case errors.Is(err, ErrDraining):
		s.metrics.draining.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client went away; not a server failure.
	default:
		s.metrics.failed[req.class].Add(1)
	}
	return ans, err
}

// resolve walks the two result tiers — cached answer, identical in-flight
// query — before scheduling real work.
func (s *Server) resolve(ctx context.Context, req *request) (*Answer, error) {
	if s.results == nil {
		return s.schedule(ctx, req)
	}
	if ans, ok := s.results.get(req.key); ok {
		s.metrics.resultHits[req.class].Add(1)
		return ans, nil
	}
	s.metrics.resultMisses[req.class].Add(1)

	s.inflightMu.Lock()
	if fl, ok := s.inflight[req.key]; ok {
		s.inflightMu.Unlock()
		s.metrics.flightJoins[req.class].Add(1)
		select {
		case <-fl.done:
			return fl.ans, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[req.key] = fl
	s.inflightMu.Unlock()

	ans, err := s.schedule(ctx, req)
	if err == nil {
		s.results.put(req.key, ans)
	}
	fl.ans, fl.err = ans, err
	s.inflightMu.Lock()
	delete(s.inflight, req.key)
	s.inflightMu.Unlock()
	close(fl.done)
	return ans, err
}

// schedule admits the request into its class queue and waits for a worker
// to answer it. Admission fails fast when the queue is full or the
// estimated wait already blows the deadline.
func (s *Server) schedule(ctx context.Context, req *request) (*Answer, error) {
	if s.drainingFlag.Load() {
		return nil, ErrDraining
	}
	cq := s.queues[req.class]
	est := s.estimateWait(req.class)
	cq.mu.Lock()
	if cq.closed {
		cq.mu.Unlock()
		return nil, ErrDraining
	}
	if len(cq.items) >= s.opt.QueueCap {
		cq.mu.Unlock()
		return nil, &RejectError{Reason: "queue full", RetryAfter: est}
	}
	if !req.deadline.IsZero() && time.Now().Add(est).After(req.deadline) {
		cq.mu.Unlock()
		return nil, &RejectError{Reason: "estimated wait exceeds deadline", RetryAfter: est}
	}
	cq.items = append(cq.items, req)
	cq.cond.Signal()
	cq.mu.Unlock()

	select {
	case <-req.done:
		return req.ans, req.err
	case <-ctx.Done():
		// The request stays queued; its batch completes without a reader.
		return nil, ctx.Err()
	}
}

// estimateWait projects how long a new arrival would queue: batches ahead
// of it divided across workers, times the recent batch service time.
func (s *Server) estimateWait(class Class) time.Duration {
	ema := s.metrics.emaBatchDur(class)
	if ema <= 0 {
		ema = 50 * time.Millisecond
	}
	batchesAhead := s.queues[class].depth()/s.opt.MaxBatch + 1
	workers := s.opt.Workers
	return ema * time.Duration((batchesAhead+workers-1)/workers)
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.drainingFlag.Load() }

// Drain stops admission, lets queued queries finish, and waits for the
// workers to exit (bounded by ctx). Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	if !s.drainingFlag.Swap(true) {
		for _, q := range s.queues {
			q.close()
		}
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with a generous default bound; intended for tests and
// defer-style cleanup.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Drain(ctx)
}
