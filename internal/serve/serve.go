package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/live"
	"tsgraph/internal/subgraph"
)

// Options configures a Server over one resident time-series graph.
type Options struct {
	// Template, Parts and Source are the resident graph: template and
	// partitioning loaded once, instances behind Source (typically a
	// gofs.InstanceCache so hot packs stay decoded).
	Template *graph.Template
	Parts    []*subgraph.PartitionData
	Source   core.InstanceSource

	// Delta is the collection's timestep period; WeightAttr the edge
	// attribute TDSP minimizes over; TweetsAttr the vertex attribute meme
	// queries scan ("" disables meme queries).
	Delta      float64
	WeightAttr string
	TweetsAttr string

	// Cores bounds the BSP engine's per-job parallelism (0 = engine
	// default).
	Cores int

	// MaxBatch caps how many compatible queries one sweep may answer
	// (1 disables coalescing). BatchLinger, when positive, holds a short
	// batch open briefly so concurrent queries can join it.
	MaxBatch    int
	BatchLinger time.Duration

	// QueueCap bounds each class queue; submissions beyond it are
	// rejected with HTTP 429. Workers is the number of concurrent sweep
	// executors per class.
	QueueCap int
	Workers  int

	// ResultCacheSize bounds the keyed result cache (0 disables it, and
	// with it single-flight deduplication).
	ResultCacheSize int

	// DefaultDeadline applies to queries that don't carry their own.
	DefaultDeadline time.Duration

	// Tracer, when active, receives query and batch spans.
	Tracer *obs.Tracer

	// Live is the continuous observability recorder: per-query lifecycle
	// traces with tail-sampled retention, the flight recorder behind
	// /debug/flight, latency histograms, and SLO accounting. When nil the
	// server creates one with defaults — live observability is always on;
	// pass a configured recorder to tune thresholds and sampling.
	Live *live.Recorder

	// DisableLive runs the server without a lifecycle recorder. Every
	// instrumentation call is then a nil-receiver no-op; this exists for the
	// obslive ablation (measuring the recorder's overhead), not for
	// production use.
	DisableLive bool

	// InstanceStats, when set, surfaces the instance-cache counters in
	// /stats and /metrics.
	InstanceStats func() gofs.CacheStats

	// ClassSource, when set, supplies a per-class instance source (e.g.
	// gofs.InstanceCache.ClassSource) so storage-tier cache traffic is
	// attributed to the query class that caused it. Classes for which it
	// returns nil fall back to Source.
	ClassSource func(class string) core.InstanceSource

	// Sweeper, when set, executes the sweeps instead of the in-process
	// default — the shard router plugs in here to scatter/gather across
	// ranks. Admission, batching, caching, and watermark pinning are
	// unaffected; only the compute moves.
	Sweeper Sweeper
}

// ClassNames returns the query class labels in Class order; a
// live.Recorder serving this package should be configured with them.
func ClassNames() []string {
	out := make([]string, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out[c] = c.String()
	}
	return out
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxBatch < 1 {
		out.MaxBatch = 1
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 256
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.DefaultDeadline <= 0 {
		out.DefaultDeadline = 30 * time.Second
	}
	return out
}

// boundedSource pins a sweep's view of the resident graph to the first
// steps timesteps. Published instances are immutable, so a sweep admitted
// at one watermark reads a consistent snapshot even while live ingestion
// appends behind it — the appended timesteps simply don't exist for it.
type boundedSource struct {
	src   core.InstanceSource
	steps int
}

func (b boundedSource) Timesteps() int { return b.steps }

func (b boundedSource) Load(timestep int) (*graph.Instance, error) {
	return b.src.Load(timestep)
}

// Delta passes through when the underlying source can report change
// summaries; nil means unknown and is always safe.
func (b boundedSource) Delta(timestep int) *graph.Delta {
	if ds, ok := b.src.(core.DeltaSource); ok {
		return ds.Delta(timestep)
	}
	return nil
}

// flight is one in-flight computation of a keyed query; late arrivals with
// the same key wait on done instead of queueing duplicate work.
type flight struct {
	done chan struct{}
	ans  *Answer
	err  error
}

// Server answers online queries over one resident time-series graph. The
// graph is loaded once; queries are admission-controlled, coalesced into
// micro-batches per class, executed through the same algorithm entry
// points the offline tools use, and cached by canonical key.
type Server struct {
	opt     Options
	cfg     bsp.Config
	metrics *Metrics
	live    *live.Recorder
	results *resultCache

	// sources[c] is the instance source class c's sweeps read through —
	// Options.Source, or a class-attributed view of it.
	sources [numClasses]core.InstanceSource

	// sweeper executes batched sweeps — in-process by default, or a shard
	// router fanning out over the cluster mesh.
	sweeper Sweeper

	queues   [numClasses]*classQueue
	workerWG sync.WaitGroup

	drainingFlag atomic.Bool

	inflightMu sync.Mutex
	inflight   map[string]*flight

	queryID atomic.Int64

	// wmHeader caches the rendered X-Tsserve-Watermark value; the watermark
	// only changes when an append publishes, so the cached-query hot path
	// reuses one allocation instead of re-rendering per response.
	wmHeader atomic.Pointer[wmHeaderVal]
}

type wmHeaderVal struct {
	wm  int
	val []string
}

// watermarkHeaderValue returns the header-map value for a watermark,
// cached across requests at the same watermark.
func (s *Server) watermarkHeaderValue(wm int) []string {
	if c := s.wmHeader.Load(); c != nil && c.wm == wm {
		return c.val
	}
	c := &wmHeaderVal{wm: wm, val: []string{strconv.Itoa(wm)}}
	s.wmHeader.Store(c)
	return c.val
}

// New validates the options and starts the per-class worker pool.
func New(opt Options) (*Server, error) {
	if opt.Template == nil || len(opt.Parts) == 0 || opt.Source == nil {
		return nil, errors.New("serve: Template, Parts and Source are required")
	}
	if opt.Source.Timesteps() == 0 {
		return nil, errors.New("serve: source has no instances")
	}
	if opt.Delta <= 0 {
		return nil, fmt.Errorf("serve: delta must be positive, got %v", opt.Delta)
	}
	if opt.WeightAttr != "" && opt.Template.EdgeSchema().Index(opt.WeightAttr) < 0 {
		return nil, fmt.Errorf("serve: template lacks edge attribute %q", opt.WeightAttr)
	}
	if opt.TweetsAttr != "" && opt.Template.VertexSchema().Index(opt.TweetsAttr) < 0 {
		return nil, fmt.Errorf("serve: template lacks vertex attribute %q", opt.TweetsAttr)
	}
	s := &Server{
		opt:      opt.withDefaults(),
		metrics:  newMetrics(),
		inflight: make(map[string]*flight),
	}
	s.live = s.opt.Live
	if s.live == nil && !s.opt.DisableLive {
		s.live = live.NewRecorder(live.Config{Classes: ClassNames()})
	}
	s.cfg = bsp.Config{CoresPerHost: s.opt.Cores}
	s.results = newResultCache(s.opt.ResultCacheSize)
	s.sweeper = s.opt.Sweeper
	if s.sweeper == nil {
		s.sweeper = localSweeper{s}
	}
	for c := Class(0); c < numClasses; c++ {
		s.sources[c] = s.opt.Source
		if s.opt.ClassSource != nil {
			if src := s.opt.ClassSource(c.String()); src != nil {
				s.sources[c] = src
			}
		}
	}
	for c := Class(0); c < numClasses; c++ {
		s.queues[c] = newClassQueue()
		for w := 0; w < s.opt.Workers; w++ {
			s.workerWG.Add(1)
			go s.worker(c)
		}
	}
	return s, nil
}

// Metrics exposes the server's counters (read-only use).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Live exposes the server's continuous observability recorder.
func (s *Server) Live() *live.Recorder { return s.live }

// Timesteps returns the number of instances the resident graph holds —
// the live watermark when the dataset is being ingested into.
func (s *Server) Timesteps() int { return s.opt.Source.Timesteps() }

// Template returns the resident template.
func (s *Server) Template() *graph.Template { return s.opt.Template }

// Submit answers one query, blocking until it completes, is rejected, or
// ctx is cancelled. Errors unwrap to ErrBadQuery, ErrDraining, or
// *RejectError; anything else is an execution failure.
func (s *Server) Submit(ctx context.Context, q Query) (*Answer, error) {
	ans, lq, err := s.SubmitTraced(ctx, q)
	lq.Finish(StatusOf(err), err)
	return ans, err
}

// SubmitTraced is Submit with the lifecycle trace handed to the caller:
// the returned query carries the id for the X-Tsserve-Query-Id header and
// is still open so the caller can record post-processing stages (encode,
// flush) before calling Finish. The caller MUST Finish it exactly once.
func (s *Server) SubmitTraced(ctx context.Context, q Query) (*Answer, *live.Query, error) {
	lq := s.live.Begin()
	admitStart := time.Now()
	req, err := s.normalize(q)
	if err != nil {
		s.metrics.bad.Add(1)
		lq.Stage(live.StageAdmit, admitStart, time.Since(admitStart))
		return nil, lq, err
	}
	lq.SetClass(int(req.class))
	lq.Stage(live.StageAdmit, admitStart, time.Since(admitStart))
	req.live = lq

	start := time.Now()
	ans, err := s.resolve(ctx, req)
	dur := time.Since(start)
	if tr := s.opt.Tracer; tr.Active() {
		tr.RecordSpan(obs.SpanQuery, -1, int32(req.class), -1, s.queryID.Add(1), start, dur)
	}
	var rej *RejectError
	switch {
	case err == nil:
		s.metrics.ok[req.class].Add(1)
	case errors.As(err, &rej):
		s.metrics.rejected[req.class].Add(1)
	case errors.Is(err, ErrDraining):
		s.metrics.draining.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client went away; not a server failure.
	default:
		s.metrics.failed[req.class].Add(1)
	}
	return ans, lq, err
}

// StatusOf maps a Submit error to the lifecycle status the tail sampler
// keys retention off (and the HTTP layer maps to a status code).
func StatusOf(err error) live.Status {
	var rej *RejectError
	switch {
	case err == nil:
		return live.StatusOK
	case errors.As(err, &rej):
		return live.StatusRejected
	case errors.Is(err, ErrDraining):
		return live.StatusDraining
	case errors.Is(err, ErrBadQuery):
		return live.StatusBadQuery
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return live.StatusCanceled
	default:
		return live.StatusError
	}
}

// resolve walks the two result tiers — cached answer, identical in-flight
// query — before scheduling real work.
func (s *Server) resolve(ctx context.Context, req *request) (*Answer, error) {
	if s.results == nil {
		return s.schedule(ctx, req)
	}
	cacheStart := time.Now()
	ans, ok := s.results.get(req.key)
	req.live.Stage(live.StageCache, cacheStart, time.Since(cacheStart))
	if ok {
		s.metrics.resultHits[req.class].Add(1)
		req.live.SetCacheHit()
		return ans, nil
	}
	s.metrics.resultMisses[req.class].Add(1)

	s.inflightMu.Lock()
	if fl, ok := s.inflight[req.key]; ok {
		s.inflightMu.Unlock()
		s.metrics.flightJoins[req.class].Add(1)
		joinStart := time.Now()
		select {
		case <-fl.done:
			// The wait on the identical in-flight query is this query's
			// queue time.
			req.live.Stage(live.StageQueue, joinStart, time.Since(joinStart))
			return fl.ans, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[req.key] = fl
	s.inflightMu.Unlock()

	ans, err := s.schedule(ctx, req)
	if err == nil {
		s.results.put(req.key, ans)
	}
	fl.ans, fl.err = ans, err
	s.inflightMu.Lock()
	delete(s.inflight, req.key)
	s.inflightMu.Unlock()
	close(fl.done)
	return ans, err
}

// schedule admits the request into its class queue and waits for a worker
// to answer it. Admission fails fast when the queue is full or the
// estimated wait already blows the deadline.
func (s *Server) schedule(ctx context.Context, req *request) (*Answer, error) {
	if s.drainingFlag.Load() {
		return nil, ErrDraining
	}
	cq := s.queues[req.class]
	est := s.estimateWait(req.class)
	cq.mu.Lock()
	if cq.closed {
		cq.mu.Unlock()
		return nil, ErrDraining
	}
	if len(cq.items) >= s.opt.QueueCap {
		cq.mu.Unlock()
		return nil, &RejectError{Reason: "queue full", RetryAfter: est}
	}
	if !req.deadline.IsZero() && time.Now().Add(est).After(req.deadline) {
		cq.mu.Unlock()
		return nil, &RejectError{Reason: "estimated wait exceeds deadline", RetryAfter: est}
	}
	cq.items = append(cq.items, req)
	cq.cond.Signal()
	cq.mu.Unlock()

	select {
	case <-req.done:
		return req.ans, req.err
	case <-ctx.Done():
		// The request stays queued; its batch completes without a reader.
		return nil, ctx.Err()
	}
}

// estimateWait projects how long a new arrival would queue: batches ahead
// of it divided across workers, times the recent batch service time.
func (s *Server) estimateWait(class Class) time.Duration {
	ema := s.metrics.emaBatchDur(class)
	if ema <= 0 {
		ema = 50 * time.Millisecond
	}
	batchesAhead := s.queues[class].depth()/s.opt.MaxBatch + 1
	workers := s.opt.Workers
	return ema * time.Duration((batchesAhead+workers-1)/workers)
}

// QueueWait returns the current queue-wait estimate for a class — the
// projection admission control uses. Exposed as an anomaly-detector
// signal (a sustained multiple of its baseline means the scheduler is
// falling behind).
func (s *Server) QueueWait(c Class) time.Duration { return s.estimateWait(c) }

// MaxQueueWait returns the worst queue-wait estimate across classes.
func (s *Server) MaxQueueWait() time.Duration {
	var worst time.Duration
	for c := Class(0); c < numClasses; c++ {
		if w := s.estimateWait(c); w > worst {
			worst = w
		}
	}
	return worst
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.drainingFlag.Load() }

// Drain stops admission, lets queued queries finish, and waits for the
// workers to exit (bounded by ctx). Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	if !s.drainingFlag.Swap(true) {
		for _, q := range s.queues {
			q.close()
		}
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with a generous default bound; intended for tests and
// defer-style cleanup.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Drain(ctx)
}
