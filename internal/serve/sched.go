package serve

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/live"
)

// classQueue is the bounded FIFO of one query class. Workers pull the head
// together with every queued request sharing its batch key, so compatible
// queries that pile up behind a busy worker leave in one micro-batch.
type classQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*request
	closed bool
}

func newClassQueue() *classQueue {
	q := &classQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *classQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *classQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// popBatch blocks for work, then returns the oldest request plus every
// queued request with the same batch key (up to max). Requests whose
// deadline already passed while queued come back in expired instead.
// A nil batch means the queue is closed and empty.
func (q *classQueue) popBatch(max int) (batch, expired []*request) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 {
			return batch, expired // closed and drained
		}
		now := time.Now()
		keep := q.items[:0]
		key := ""
		for _, r := range q.items {
			switch {
			case !r.deadline.IsZero() && r.deadline.Before(now):
				expired = append(expired, r)
			case key == "":
				key = r.batchKey
				batch = append(batch, r)
			case r.batchKey == key && len(batch) < max:
				batch = append(batch, r)
			default:
				keep = append(keep, r)
			}
		}
		// Zero the tail so dropped requests don't pin memory.
		for i := len(keep); i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = keep
		if len(batch) == 0 {
			continue // everything in the queue had expired; wait again
		}
		if len(q.items) > 0 {
			// Work remains for other workers.
			q.cond.Signal()
		}
		return batch, expired
	}
}

// takeCompatible grabs up to max queued requests matching key without
// blocking; the linger pass uses it to top up a short batch.
func (q *classQueue) takeCompatible(key string, max int) []*request {
	q.mu.Lock()
	defer q.mu.Unlock()
	if max <= 0 || len(q.items) == 0 {
		return nil
	}
	var got []*request
	keep := q.items[:0]
	for _, r := range q.items {
		if r.batchKey == key && len(got) < max {
			got = append(got, r)
		} else {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = keep
	return got
}

// worker is the per-class service loop: pull a micro-batch, optionally
// linger to let more compatible queries arrive, execute one sweep, fan the
// answers back out.
func (s *Server) worker(class Class) {
	defer s.workerWG.Done()
	q := s.queues[class]
	for {
		batch, expired := q.popBatch(s.opt.MaxBatch)
		for _, r := range expired {
			r.err = &RejectError{Reason: "deadline exceeded while queued", RetryAfter: s.estimateWait(class)}
			close(r.done)
		}
		if batch == nil {
			return
		}
		if s.opt.BatchLinger > 0 && len(batch) < s.opt.MaxBatch {
			time.Sleep(s.opt.BatchLinger)
			batch = append(batch, q.takeCompatible(batch[0].batchKey, s.opt.MaxBatch-len(batch))...)
		}
		s.executeBatch(class, batch)
	}
}

// executeBatch answers a whole micro-batch with one TI-BSP job and
// publishes per-request answers (or the shared error).
func (s *Server) executeBatch(class Class, batch []*request) {
	start := time.Now()
	for _, r := range batch {
		// Queue time: enqueue (normalize) to worker pickup, including any
		// linger spent topping the batch up.
		r.live.Stage(live.StageQueue, r.enq, start.Sub(r.enq))
	}
	var err error
	switch class {
	case ClassTDSP:
		err = s.execTDSP(batch)
	case ClassTopN:
		err = s.execTopN(batch)
	case ClassMeme:
		err = s.execMeme(batch)
	}
	dur := time.Since(start)
	seq := s.metrics.observeBatch(class, len(batch), dur)
	if tr := s.opt.Tracer; tr.Active() {
		tr.RecordSpan(obs.SpanBatch, -1, int32(class), -1, int64(len(batch)), start, dur)
	}
	s.logBatch(class, seq, batch, dur, err)
	for _, r := range batch {
		r.live.Stage(live.StageSweep, start, dur)
		r.live.SetBatch(seq, len(batch))
		if err != nil {
			r.err = err
		}
		close(r.done)
	}
}

// logBatch emits the per-batch structured record with batch_seq and the
// member query_ids, so a flight-recorder trace joins against
// -log-format json output on either field. Successes log at debug,
// failed sweeps at warn; id formatting is skipped entirely when the
// record would be discarded.
func (s *Server) logBatch(class Class, seq int64, batch []*request, dur time.Duration, err error) {
	level := slog.LevelDebug
	if err != nil {
		level = slog.LevelWarn
	}
	l := slog.Default()
	ctx := context.Background()
	if !l.Enabled(ctx, level) {
		return
	}
	ids := make([]string, 0, len(batch))
	for _, r := range batch {
		if id := r.live.IDString(); id != "" {
			ids = append(ids, id)
		}
	}
	attrs := []any{
		"class", class.String(),
		"batch_seq", seq,
		"batch_size", len(batch),
		"dur_ms", float64(dur) / float64(time.Millisecond),
		"query_ids", ids,
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	l.Log(ctx, level, "batch", attrs...)
}

// execTDSP coalesces every request of the batch (all sharing one departure
// timestep) into a single multi-source sweep: distinct sources become batch
// queries, targets are merged per source, and each request reads its answer
// back out of the shared program state.
func (s *Server) execTDSP(batch []*request) error {
	depart := batch[0].depart
	targetsOf := make(map[int]map[int]bool)
	for _, r := range batch {
		ts := targetsOf[r.srcIdx]
		if ts == nil {
			ts = make(map[int]bool)
			targetsOf[r.srcIdx] = ts
		}
		ts[r.tgtIdx] = true
	}
	sources := make([]int, 0, len(targetsOf))
	for src := range targetsOf {
		sources = append(sources, src)
	}
	sort.Ints(sources)
	siOf := make(map[int]int, len(sources))
	queries := make([]algorithms.BatchQuery, len(sources))
	for i, src := range sources {
		siOf[src] = i
		targets := make([]int, 0, len(targetsOf[src]))
		for tgt := range targetsOf[src] {
			targets = append(targets, tgt)
		}
		sort.Ints(targets)
		queries[i] = algorithms.BatchQuery{Source: src, Targets: targets}
	}
	lookup, err := s.sweeper.SweepTDSP(context.Background(), batch[0].watermark, depart, queries)
	if err != nil {
		return err
	}
	for _, r := range batch {
		arr, at, ok := lookup(siOf[r.srcIdx], r.tgtIdx)
		a := &TDSPAnswer{Source: r.sourceID, Target: r.targetID, Depart: depart}
		if ok {
			a.Reached, a.Arrival, a.Timestep = true, arr, at
		} else {
			a.Timestep = -1
		}
		r.ans = &Answer{Kind: "tdsp", Watermark: r.watermark, TDSP: a}
	}
	return nil
}

// execTopN answers a batch of identical windowed rankings (the top-N batch
// key is the full query key) with one windowed run shared by all.
func (s *Server) execTopN(batch []*request) error {
	r0 := batch[0]
	out, err := s.sweeper.SweepTopN(context.Background(), r0.watermark, r0.attr, r0.n, r0.from, r0.count)
	if err != nil {
		return err
	}
	ans := &Answer{Kind: "topn", Watermark: r0.watermark, TopN: &TopNAnswer{
		Attr: r0.attr, N: r0.n, From: r0.from, Count: len(out), Steps: out,
	}}
	for _, r := range batch {
		r.ans = ans
	}
	return nil
}

func (s *Server) topNParallelism(count int) int {
	p := s.opt.Cores
	if p < 1 {
		p = 1
	}
	if p > 4 {
		p = 4
	}
	if count < p {
		p = count
	}
	return p
}

// execMeme runs the spread of one tag once and answers every probe of that
// tag from the resulting coloring.
func (s *Server) execMeme(batch []*request) error {
	probes := make([]int, 0, len(batch))
	posOf := make(map[int]int)
	for _, r := range batch {
		if r.probeIdx >= 0 {
			if _, ok := posOf[r.probeIdx]; !ok {
				posOf[r.probeIdx] = 0
				probes = append(probes, r.probeIdx)
			}
		}
	}
	sort.Ints(probes)
	for i, v := range probes {
		posOf[v] = i
	}
	sp, err := s.sweeper.SweepMeme(context.Background(), batch[0].watermark, batch[0].tag, probes)
	if err != nil {
		return err
	}
	for _, r := range batch {
		a := &MemeAnswer{Tag: r.tag, Colored: sp.Colored}
		if r.probeIdx >= 0 {
			at := sp.ProbeAt[posOf[r.probeIdx]]
			a.Vertex, a.ColoredAt = r.probeID, &at
		}
		r.ans = &Answer{Kind: "meme", Watermark: r.watermark, Meme: a}
	}
	return nil
}
