package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/chaos"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/live"
)

// delaySource injects latency instead of failure: when the chaos site
// fires, the instance load stalls for delay. This is the serve-side
// equivalent of tsserve's -chaos/-chaos-delay pair, used to manufacture a
// deterministically slow query.
type delaySource struct {
	src   core.InstanceSource
	inj   *chaos.Injector
	delay time.Duration
}

func (d *delaySource) Timesteps() int { return d.src.Timesteps() }

func (d *delaySource) Load(ts int) (*graph.Instance, error) {
	if d.inj.ShouldFail(chaos.SiteGoFSLoad) {
		time.Sleep(d.delay)
	}
	return d.src.Load(ts)
}

// TestFlightRecorderEndToEnd is the acceptance path: a chaos-injected slow
// query is answered over real HTTP, its id (from the X-Tsserve-Query-Id
// header) resolves in /debug/flight, and the per-query export is valid
// Chrome trace JSON showing the queue → batch → sweep stages tagged with
// that id.
func TestFlightRecorderEndToEnd(t *testing.T) {
	g, parts, src := fixture(t)
	inj, err := chaos.Parse("gofs.load=at:1")
	if err != nil {
		t.Fatal(err)
	}
	slowSrc := &delaySource{src: src, inj: inj, delay: 120 * time.Millisecond}

	tracer := obs.NewTracer(0)
	tracer.Enable()
	rec := live.NewRecorder(live.Config{
		Classes:       ClassNames(),
		SlowThreshold: 50 * time.Millisecond,
		Seed:          1,
	})
	opt := baseOptions(g, parts, slowSrc)
	opt.Tracer = tracer
	opt.Live = rec
	s := newServer(t, opt)
	ts := httptest.NewServer(NewMux(s, nil))
	defer ts.Close()

	// First query: its first instance load eats the injected delay → slow
	// → tail-sampled into the flight recorder.
	resp, body := postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 0, Target: 63})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow query: %s (%s)", resp.Status, body)
	}
	slowID := resp.Header.Get("X-Tsserve-Query-Id")
	if slowID == "" {
		t.Fatal("no X-Tsserve-Query-Id header")
	}
	var env struct {
		QueryID string `json:"query_id"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.QueryID != slowID {
		t.Fatalf("body query_id %q does not match header %q", env.QueryID, slowID)
	}

	// Second query: chaos already spent, fast → dropped by the sampler.
	resp, _ = postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 0, Target: 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast query: %s", resp.Status)
	}
	fastID := resp.Header.Get("X-Tsserve-Query-Id")

	// Snapshot: the slow query is retained and marked slow; the fast one
	// appears only in the summary ring.
	flight := func(path string) (int, []byte) {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r.StatusCode, b
	}
	code, b := flight("/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight: %d", code)
	}
	var snap struct {
		Retained  []live.Summary `json:"retained"`
		Summaries []live.Summary `json:"summaries"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if len(snap.Retained) != 1 || snap.Retained[0].ID != slowID || !snap.Retained[0].Slow {
		t.Fatalf("retained = %+v, want the slow query %s", snap.Retained, slowID)
	}
	if len(snap.Summaries) != 2 {
		t.Fatalf("summary ring has %d entries, want 2", len(snap.Summaries))
	}

	// Per-query export: valid Chrome trace, stages tagged with the id, and
	// the tracer's batch/sweep spans from the query's window interleaved.
	code, b = flight("/debug/flight?id=" + slowID)
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d (%s)", code, b)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		QueryID string `json:"query_id"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export not valid Chrome trace JSON: %v\n%s", err, b)
	}
	if doc.QueryID != slowID {
		t.Fatalf("export metadata query_id = %q, want %q", doc.QueryID, slowID)
	}
	stageSeen := map[string]bool{}
	sawBatch := false
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "lifecycle" {
			stageSeen[ev.Name] = true
			if got := ev.Args["query"]; got != slowID {
				t.Fatalf("stage %s tagged %v, want %s", ev.Name, got, slowID)
			}
		}
		if strings.HasPrefix(ev.Name, "batch x") {
			sawBatch = true
		}
	}
	for _, want := range []string{"admit", "queue", "sweep", "encode"} {
		if !stageSeen[want] {
			t.Errorf("trace missing %q stage; saw %v", want, stageSeen)
		}
	}
	if !sawBatch {
		t.Error("trace has no SpanBatch event from the tracer window")
	}

	// The dropped fast query is not retrievable.
	if code, _ := flight("/debug/flight?id=" + fastID); code != http.StatusNotFound {
		t.Fatalf("dropped trace fetch: %d, want 404", code)
	}
}

// BenchmarkLiveOverhead extends the tracer-overhead measurement to the
// serving path: Submit answering real sweeps with the lifecycle recorder
// on versus off. The documented bound is <=3% enabled overhead — the
// per-query cost is one allocation plus a handful of atomic stores, against
// a multi-superstep TI-BSP sweep.
func BenchmarkLiveOverhead(b *testing.B) {
	g, parts, src := fixture(b)
	run := func(b *testing.B, enabled bool) {
		opt := baseOptions(g, parts, src)
		opt.ResultCacheSize = 0    // every Submit runs a real sweep
		opt.DisableLive = !enabled // nil recorder: every lifecycle call is a no-op
		s := newServer(b, opt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := Query{Kind: "tdsp", Source: 0, Target: int64(10 + i%40)}
			if _, err := s.Submit(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
