package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
)

func postQuery(tb testing.TB, url string, q Query) (*http.Response, []byte) {
	tb.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, out
}

// TestHTTPReplayMixedConcurrent is the end-to-end form of the
// byte-identity requirement: concurrent mixed queries over real HTTP, each
// response compared byte-for-byte against the offline answer.
func TestHTTPReplayMixedConcurrent(t *testing.T) {
	g, parts, src := fixture(t)
	queries := mixedQueries()
	want := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(offlineAnswer(t, g, parts, src, q))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = b
	}

	opt := baseOptions(g, parts, src)
	opt.MaxBatch = 8
	opt.Workers = 2
	opt.ResultCacheSize = 64
	s := newServer(t, opt)
	reg := obs.NewRegistry(nil)
	reg.Register(s)
	ts := httptest.NewServer(NewMux(s, reg))
	defer ts.Close()

	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q Query) {
				defer wg.Done()
				resp, body := postQuery(t, ts.URL, q)
				if resp.StatusCode != http.StatusOK {
					errs <- "status " + resp.Status + ": " + string(body)
					return
				}
				// Every response names its lifecycle trace: the header and
				// the body's query_id (always the envelope's trailing field)
				// must agree, and the remaining answer bytes must match the
				// offline run exactly.
				id := resp.Header.Get("X-Tsserve-Query-Id")
				if id == "" {
					errs <- "response missing X-Tsserve-Query-Id"
					return
				}
				got := strings.TrimRight(string(body), "\n")
				tail := `,"query_id":"` + id + `"}`
				if !strings.HasSuffix(got, tail) {
					errs <- "body query_id does not match header " + id + ": " + got
					return
				}
				got = strings.TrimSuffix(got, tail) + "}"
				if got != string(want[i]) {
					errs <- "query diverged:\n got " + got + "\nwant " + string(want[i])
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The obs endpoints are mounted and carry the serving metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "tsserve_queries_answered_total") {
		t.Error("/metrics lacks tsserve counters")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	g, parts, src := fixture(t)
	gate := newGatedSource(src)
	opt := baseOptions(g, parts, gate)
	opt.Workers = 1
	opt.MaxBatch = 1
	opt.QueueCap = 1
	s := newServer(t, opt)
	// Registering the server on a registry exposes its collector.
	reg := obs.NewRegistry(nil)
	reg.Register(s)
	ts := httptest.NewServer(NewMux(s, reg))
	defer ts.Close()

	// Malformed JSON and unknown fields are 400s.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %s", resp.Status)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"kind":"tdsp","sauce":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", resp.Status)
	}

	// Validation failures are 400s.
	resp, body := postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 9999, Target: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad vertex: %s (%s)", resp.Status, body)
	}

	// GET is rejected.
	getResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %s", getResp.Status)
	}

	// Overload: occupy the worker, fill the 1-slot queue, then expect 429
	// with a Retry-After hint.
	var wg sync.WaitGroup
	occupy := func(target int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), Query{Kind: "tdsp", Source: 0, Target: target}); err != nil {
				t.Errorf("occupying query failed: %v", err)
			}
		}()
	}
	occupy(63)
	<-gate.entered
	occupy(12)
	waitFor(t, func() bool { return s.queues[ClassTDSP].depth() == 1 }, "backlog never built")

	resp, body = postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 0, Target: 40})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: %s (%s)", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("429 body not an error envelope: %s", body)
	}

	close(gate.release)
	wg.Wait()

	// Drain: health flips, new queries get 503 + Retry-After.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %s", hresp.Status)
	}
	resp, _ = postQuery(t, ts.URL, Query{Kind: "meme", Tag: fixMeme})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %s", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestHTTPStats(t *testing.T) {
	g, parts, src := fixture(t)
	opt := baseOptions(g, parts, src)
	opt.ResultCacheSize = 8
	s := newServer(t, opt)
	ts := httptest.NewServer(NewMux(s, nil))
	defer ts.Close()

	if resp, _ := postQuery(t, ts.URL, Query{Kind: "tdsp", Source: 0, Target: 63}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s", resp.Status)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Timesteps != fixSteps || st.Vertices != g.NumVertices() {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.Answered["tdsp"] != 1 || st.Sweeps["tdsp"] != 1 {
		t.Fatalf("stats counters: %+v", st)
	}
	if len(st.SampleVertices) == 0 {
		t.Fatal("no sample vertices")
	}
	for _, v := range st.SampleVertices {
		if g.VertexIndex(graph.VertexID(v)) < 0 {
			t.Fatalf("sample vertex %d not in template", v)
		}
	}
	if st.InstanceCache != nil {
		t.Fatal("instance_cache reported without Options.InstanceStats")
	}
}

func TestHTTPStatsInstanceCache(t *testing.T) {
	g, parts, src := fixture(t)
	opt := baseOptions(g, parts, src)
	opt.InstanceStats = func() gofs.CacheStats {
		return gofs.CacheStats{
			Hits: 7, Misses: 2, Evictions: 1, PackLoads: 2, Resident: 1,
			DecodeTime:    3 * time.Millisecond,
			BytesResident: 4096, BytesLimit: 1 << 20,
			SnapshotSteps: 5, DeltaSteps: 15,
		}
	}
	s := newServer(t, opt)
	ts := httptest.NewServer(NewMux(s, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	ic := st.InstanceCache
	if ic == nil {
		t.Fatal("stats missing instance_cache")
	}
	if ic.Hits != 7 || ic.Misses != 2 || ic.Evictions != 1 || ic.PackLoads != 2 {
		t.Fatalf("cache counters: %+v", ic)
	}
	if ic.ResidentPacks != 1 || ic.ResidentBytes != 4096 || ic.LimitBytes != 1<<20 {
		t.Fatalf("byte accounting: %+v", ic)
	}
	if ic.SnapshotSteps != 5 || ic.DeltaSteps != 15 {
		t.Fatalf("materialization counters: %+v", ic)
	}
	if ic.DecodeMS != 3 {
		t.Fatalf("decode ms = %v, want 3", ic.DecodeMS)
	}
}
