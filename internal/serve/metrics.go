package serve

import (
	"sort"
	"sync/atomic"
	"time"

	"tsgraph/internal/obs"
)

// Metrics counts everything the serving layer does. All fields are updated
// atomically; the struct doubles as the server's obs.Collector source.
// Latency distributions live in the server's live.Recorder (log-bucketed
// histograms per class and stage), not here.
type Metrics struct {
	ok       [numClasses]atomic.Int64 // answered 200
	rejected [numClasses]atomic.Int64 // admission-control 429
	draining atomic.Int64             // refused 503
	bad      atomic.Int64             // validation 400
	failed   [numClasses]atomic.Int64 // execution error 500

	resultHits   [numClasses]atomic.Int64
	resultMisses [numClasses]atomic.Int64
	flightJoins  [numClasses]atomic.Int64

	sweeps         [numClasses]atomic.Int64 // TI-BSP jobs actually run
	batches        atomic.Int64
	batchedQueries atomic.Int64

	// emaBatch is an exponential moving average of batch service time per
	// class (nanoseconds); admission control turns it into Retry-After.
	emaBatch [numClasses]atomic.Int64
}

func newMetrics() *Metrics { return &Metrics{} }

// Sweeps returns how many TI-BSP jobs of a class have executed.
func (m *Metrics) Sweeps(c Class) int64 { return m.sweeps[c].Load() }

// ResultHits returns the result-cache hit count of a class.
func (m *Metrics) ResultHits(c Class) int64 { return m.resultHits[c].Load() }

// ResultMisses returns the result-cache miss count of a class.
func (m *Metrics) ResultMisses(c Class) int64 { return m.resultMisses[c].Load() }

// FlightJoins returns how many queries joined an identical in-flight query.
func (m *Metrics) FlightJoins(c Class) int64 { return m.flightJoins[c].Load() }

// Batches returns the number of micro-batches executed.
func (m *Metrics) Batches() int64 { return m.batches.Load() }

// BatchedQueries returns the number of queries answered through batches.
func (m *Metrics) BatchedQueries() int64 { return m.batchedQueries.Load() }

// Answered returns the number of successfully answered queries of a class.
func (m *Metrics) Answered(c Class) int64 { return m.ok[c].Load() }

// Rejected returns the admission-control rejection count of a class.
func (m *Metrics) Rejected(c Class) int64 { return m.rejected[c].Load() }

// observeBatch accounts one executed micro-batch and returns its sequence
// number (1-based), which lifecycle traces record as the coalescing
// decision.
func (m *Metrics) observeBatch(c Class, n int, dur time.Duration) int64 {
	m.sweeps[c].Add(1)
	seq := m.batches.Add(1)
	m.batchedQueries.Add(int64(n))
	for {
		old := m.emaBatch[c].Load()
		ema := dur.Nanoseconds()
		if old > 0 {
			ema = (3*old + ema) / 4
		}
		if m.emaBatch[c].CompareAndSwap(old, ema) {
			return seq
		}
	}
}

func (m *Metrics) emaBatchDur(c Class) time.Duration {
	return time.Duration(m.emaBatch[c].Load())
}

// CollectObs implements obs.Collector for the server: Prometheus-ready
// counters and gauges under the tsserve_ prefix.
func (s *Server) CollectObs(emit func(obs.Sample)) {
	m := s.metrics
	cl := func(c Class) []obs.Label { return []obs.Label{{Key: "class", Value: c.String()}} }
	for c := Class(0); c < numClasses; c++ {
		emit(obs.Sample{Name: "tsserve_queries_answered_total", Help: "Queries answered successfully.",
			Kind: "counter", Labels: cl(c), Value: float64(m.ok[c].Load())})
		emit(obs.Sample{Name: "tsserve_queries_rejected_total", Help: "Queries rejected by admission control (HTTP 429).",
			Kind: "counter", Labels: cl(c), Value: float64(m.rejected[c].Load())})
		emit(obs.Sample{Name: "tsserve_queries_failed_total", Help: "Queries that failed during execution (HTTP 500).",
			Kind: "counter", Labels: cl(c), Value: float64(m.failed[c].Load())})
		emit(obs.Sample{Name: "tsserve_result_cache_hits_total", Help: "Result-cache hits.",
			Kind: "counter", Labels: cl(c), Value: float64(m.resultHits[c].Load())})
		emit(obs.Sample{Name: "tsserve_result_cache_misses_total", Help: "Result-cache misses.",
			Kind: "counter", Labels: cl(c), Value: float64(m.resultMisses[c].Load())})
		emit(obs.Sample{Name: "tsserve_inflight_joins_total", Help: "Queries deduplicated onto an identical in-flight query.",
			Kind: "counter", Labels: cl(c), Value: float64(m.flightJoins[c].Load())})
		emit(obs.Sample{Name: "tsserve_sweeps_total", Help: "TI-BSP jobs executed on behalf of queries.",
			Kind: "counter", Labels: cl(c), Value: float64(m.sweeps[c].Load())})
		emit(obs.Sample{Name: "tsserve_queue_depth", Help: "Queries waiting in the class queue.",
			Kind: "gauge", Labels: cl(c), Value: float64(s.queues[c].depth())})
	}
	// Latency histograms (per class and stage), flight-recorder retention
	// accounting, and the SLO family come from the live recorder.
	s.live.CollectObs(emit)
	emit(obs.Sample{Name: "tsserve_queries_bad_total", Help: "Queries failing validation (HTTP 400).",
		Kind: "counter", Value: float64(m.bad.Load())})
	emit(obs.Sample{Name: "tsserve_queries_draining_total", Help: "Queries refused during drain (HTTP 503).",
		Kind: "counter", Value: float64(m.draining.Load())})
	emit(obs.Sample{Name: "tsserve_batches_total", Help: "Micro-batches executed.",
		Kind: "counter", Value: float64(m.batches.Load())})
	emit(obs.Sample{Name: "tsserve_batched_queries_total", Help: "Queries answered through micro-batches.",
		Kind: "counter", Value: float64(m.batchedQueries.Load())})
	emit(obs.Sample{Name: "tsserve_draining", Help: "1 while the server is draining.",
		Kind: "gauge", Value: b2f(s.drainingFlag.Load())})
	if s.opt.InstanceStats != nil {
		st := s.opt.InstanceStats()
		emit(obs.Sample{Name: "tsserve_instance_cache_hits_total", Help: "Instance-cache pack hits.",
			Kind: "counter", Value: float64(st.Hits)})
		emit(obs.Sample{Name: "tsserve_instance_cache_misses_total", Help: "Instance-cache pack misses.",
			Kind: "counter", Value: float64(st.Misses)})
		emit(obs.Sample{Name: "tsserve_instance_cache_evictions_total", Help: "Instance-cache pack evictions.",
			Kind: "counter", Value: float64(st.Evictions)})
		emit(obs.Sample{Name: "tsserve_instance_cache_pack_loads_total", Help: "Packs decoded from the store.",
			Kind: "counter", Value: float64(st.PackLoads)})
		emit(obs.Sample{Name: "tsserve_instance_cache_resident_packs", Help: "Packs currently resident.",
			Kind: "gauge", Value: float64(st.Resident)})
		emit(obs.Sample{Name: "tsserve_instance_cache_decode_seconds_total", Help: "Cumulative pack decode time.",
			Kind: "counter", Value: st.DecodeTime.Seconds()})
		emit(obs.Sample{Name: "tsserve_instance_cache_resident_bytes", Help: "Decoded size of resident packs.",
			Kind: "gauge", Value: float64(st.BytesResident)})
		emit(obs.Sample{Name: "tsserve_instance_cache_limit_bytes", Help: "Byte budget in byte-bounded mode (0 when pack-count bounded).",
			Kind: "gauge", Value: float64(st.BytesLimit)})
		emit(obs.Sample{Name: "tsserve_instance_cache_snapshot_steps_total", Help: "Timesteps materialized from full snapshot records.",
			Kind: "counter", Value: float64(st.SnapshotSteps)})
		emit(obs.Sample{Name: "tsserve_instance_cache_delta_steps_total", Help: "Timesteps materialized by patching the previous timestep.",
			Kind: "counter", Value: float64(st.DeltaSteps)})
		classes := make([]string, 0, len(st.ByClass))
		for class := range st.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			cs := st.ByClass[class]
			labels := []obs.Label{{Key: "class", Value: class}}
			emit(obs.Sample{Name: "tsserve_instance_cache_class_hits_total", Help: "Instance-cache pack hits attributed to the query class whose sweep loaded them.",
				Kind: "counter", Labels: labels, Value: float64(cs.Hits)})
			emit(obs.Sample{Name: "tsserve_instance_cache_class_misses_total", Help: "Instance-cache pack misses attributed to the query class whose sweep loaded them.",
				Kind: "counter", Labels: labels, Value: float64(cs.Misses)})
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
