package serve

import (
	"context"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM. The
// returned stop releases the signal registration; after the first signal,
// a second one kills the process with the default handler (escape hatch
// from a stuck drain).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ShutdownOnSignal shuts srv down when SIGINT or SIGTERM arrives, then
// re-raises the signal so the process still exits with the conventional
// status. The returned stop function is the normal-exit path: it cancels
// the handler and shuts the server down. Call stop at most once (defer it).
// Batch tools (tsrun, tsbench) use this so their debug HTTP listener never
// outlives the process or drops in-flight scrapes.
func ShutdownOnSignal(srv *http.Server, timeout time.Duration) (stop func()) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case s := <-sig:
			_ = ShutdownHTTP(srv, timeout)
			signal.Stop(sig)
			if p, err := os.FindProcess(os.Getpid()); err == nil {
				_ = p.Signal(s)
			}
		case <-done:
		}
	}()
	return func() {
		signal.Stop(sig)
		close(done)
		_ = ShutdownHTTP(srv, timeout)
	}
}

// ShutdownHTTP gracefully shuts down an HTTP server, bounded by timeout;
// if connections outlive the bound it falls back to Close. Nil-safe, so
// call sites can defer it whether or not the server ever started.
func ShutdownHTTP(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
		return err
	}
	return nil
}
