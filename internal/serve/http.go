package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"tsgraph/internal/gofs"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/live"
)

// errorBody is the JSON error envelope of non-200 responses.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// WatermarkHeader names the response header carrying the dataset
// watermark: on /query the prefix the answer was computed over, on errors
// the current head. POST /ingest responses (internal/ingest) carry the
// same header with the post-append watermark.
const WatermarkHeader = "X-Tsserve-Watermark"

// Stats is the /stats snapshot.
type Stats struct {
	Timesteps int `json:"timesteps"`
	// Watermark mirrors Timesteps under the name the ingest tier uses:
	// every timestep below it is durably published and queryable.
	Watermark      int                   `json:"watermark"`
	Vertices       int                   `json:"vertices"`
	Draining       bool                  `json:"draining"`
	QueueDepth     map[string]int        `json:"queue_depth"`
	Answered       map[string]int64      `json:"answered"`
	Rejected       map[string]int64      `json:"rejected"`
	Sweeps         map[string]int64      `json:"sweeps"`
	Batches        int64                 `json:"batches"`
	BatchedQueries int64                 `json:"batched_queries"`
	ResultHits     int64                 `json:"result_cache_hits"`
	ResultMisses   int64                 `json:"result_cache_misses"`
	LatencyMS      map[string][3]float64 `json:"latency_ms"` // class -> [p50 p95 p99]
	// SampleVertices are valid vertex IDs (up to 64) so load generators can
	// build well-formed queries without knowing the dataset.
	SampleVertices []int64 `json:"sample_vertices"`
	// InstanceCache mirrors the gofs instance-cache counters when the
	// server was wired with Options.InstanceStats.
	InstanceCache *InstanceCacheStats `json:"instance_cache,omitempty"`
}

// InstanceCacheStats is the /stats view of gofs.CacheStats: pack-cache
// effectiveness, the byte accounting of the decoded working set, and how
// many timesteps were materialized from snapshots versus delta patches.
type InstanceCacheStats struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	PackLoads     uint64  `json:"pack_loads"`
	ResidentPacks int     `json:"resident_packs"`
	ResidentBytes int64   `json:"resident_bytes"`
	LimitBytes    int64   `json:"limit_bytes"` // 0 in pack-count mode
	SnapshotSteps uint64  `json:"snapshot_steps"`
	DeltaSteps    uint64  `json:"delta_steps"`
	DecodeMS      float64 `json:"decode_ms"`
	// ByClass attributes pack-cache hits/misses to the query class whose
	// sweep issued the load (present when the server was wired with
	// Options.ClassSource).
	ByClass map[string]gofs.ClassCacheStats `json:"by_class,omitempty"`
}

// NewMux wires the server's HTTP API: POST /query, GET /healthz, GET
// /stats, GET /debug/flight (the flight recorder), plus the registry's
// observability endpoints (/metrics, /metrics.json, /debug/...) when reg
// is non-nil. Extra endpoints (e.g. diag.Endpoints' /debug/bundle) join
// the same obs debug handler tsrun/tsbench's -obs server builds, so every
// daemon exposes one consistent endpoint set.
func NewMux(s *Server, reg *obs.Registry, extras ...obs.Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	flight := obs.Endpoint{
		Pattern: "/debug/flight",
		Handler: live.Handler(s.live, s.opt.Tracer),
		Index:   "flight recorder: query summaries + retained traces, ?id= exports one",
	}
	if reg != nil {
		oh := obs.NewHandler(reg, append([]obs.Endpoint{flight}, extras...)...)
		mux.Handle("/metrics", oh)
		mux.Handle("/metrics.json", oh)
		mux.Handle("/debug/", oh)
	} else {
		mux.Handle("/debug/flight", flight.Handler)
		for _, e := range extras {
			if e.Handler != nil {
				mux.Handle(e.Pattern, e.Handler)
			}
		}
	}
	return mux
}

// queryResponse wraps the (possibly cached, shared) Answer with the
// per-request query id, so clients can quote it when pulling the trace
// from /debug/flight.
type queryResponse struct {
	*Answer
	QueryID string `json:"query_id,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	var q Query
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "malformed query: "+err.Error(), 0)
		return
	}
	ans, lq, err := s.SubmitTraced(r.Context(), q)
	if id := lq.IDString(); id != "" {
		w.Header().Set("X-Tsserve-Query-Id", id)
	}
	if err != nil {
		w.Header().Set(WatermarkHeader, strconv.Itoa(s.Timesteps()))
		var rej *RejectError
		code := http.StatusInternalServerError
		switch {
		case errors.As(err, &rej):
			w.Header().Set("Retry-After", retryAfterSeconds(rej.RetryAfter))
			code = http.StatusTooManyRequests
			writeError(w, code, err.Error(), rej.RetryAfter.Milliseconds())
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			code = http.StatusServiceUnavailable
			writeError(w, code, err.Error(), 0)
		case errors.Is(err, ErrBadQuery):
			code = http.StatusBadRequest
			writeError(w, code, err.Error(), 0)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client gone; status is moot but 499-style close beats a 500.
			code = http.StatusServiceUnavailable
			writeError(w, code, err.Error(), 0)
		default:
			writeError(w, code, err.Error(), 0)
		}
		lq.Finish(StatusOf(err), err)
		s.logRequest(lq, code, err)
		return
	}
	encStart := time.Now()
	// Pre-canonicalized direct assignment with a value cached across
	// requests: this runs on the alloc-guarded cache-hit path.
	w.Header()[WatermarkHeader] = s.watermarkHeaderValue(ans.Watermark)
	w.Header().Set("Content-Type", "application/json")
	encErr := json.NewEncoder(w).Encode(queryResponse{Answer: ans, QueryID: lq.IDString()})
	lq.Stage(live.StageEncode, encStart, time.Since(encStart))
	if encErr != nil {
		// Too late for a status change; the client sees a truncated body.
		lq.Finish(live.StatusCanceled, encErr)
		s.logRequest(lq, http.StatusOK, encErr)
		return
	}
	lq.Finish(live.StatusOK, nil)
	s.logRequest(lq, http.StatusOK, nil)
}

// logRequest emits the per-request structured log line: query id, class,
// latency, and status on every record. Successes log at debug (turn them
// on with -log-level debug); failures at warn.
func (s *Server) logRequest(lq *live.Query, code int, err error) {
	if lq == nil {
		return
	}
	level := slog.LevelDebug
	if err != nil {
		level = slog.LevelWarn
	}
	l := slog.Default()
	if !l.Enabled(context.Background(), level) {
		return
	}
	attrs := []any{
		"query", lq.IDString(),
		"class", lq.ClassName(),
		"status", code,
		"latency_ms", float64(time.Since(lq.Start())) / float64(time.Millisecond),
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	l.Log(context.Background(), level, "query", attrs...)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	st := Stats{
		Timesteps:      s.Timesteps(),
		Watermark:      s.Timesteps(),
		Vertices:       s.opt.Template.NumVertices(),
		Draining:       s.Draining(),
		QueueDepth:     make(map[string]int, numClasses),
		Answered:       make(map[string]int64, numClasses),
		Rejected:       make(map[string]int64, numClasses),
		Sweeps:         make(map[string]int64, numClasses),
		Batches:        m.Batches(),
		BatchedQueries: m.BatchedQueries(),
		LatencyMS:      make(map[string][3]float64, numClasses),
	}
	if s.opt.InstanceStats != nil {
		cs := s.opt.InstanceStats()
		st.InstanceCache = &InstanceCacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			PackLoads:     cs.PackLoads,
			ResidentPacks: cs.Resident, ResidentBytes: cs.BytesResident,
			LimitBytes:    cs.BytesLimit,
			SnapshotSteps: cs.SnapshotSteps, DeltaSteps: cs.DeltaSteps,
			DecodeMS: float64(cs.DecodeTime) / float64(time.Millisecond),
			ByClass:  cs.ByClass,
		}
	}
	for c := Class(0); c < numClasses; c++ {
		st.QueueDepth[c.String()] = s.queues[c].depth()
		st.Answered[c.String()] = m.Answered(c)
		st.Rejected[c.String()] = m.Rejected(c)
		st.Sweeps[c.String()] = m.Sweeps(c)
		st.ResultHits += m.ResultHits(c)
		st.ResultMisses += m.ResultMisses(c)
		// Histogram-estimated total-latency quantiles (stage 2 = total).
		st.LatencyMS[c.String()] = [3]float64{
			float64(s.live.Quantile(int(c), 2, 0.50)) / float64(time.Millisecond),
			float64(s.live.Quantile(int(c), 2, 0.95)) / float64(time.Millisecond),
			float64(s.live.Quantile(int(c), 2, 0.99)) / float64(time.Millisecond),
		}
	}
	t := s.opt.Template
	n := t.NumVertices()
	stride := n / 64
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n && len(st.SampleVertices) < 64; i += stride {
		st.SampleVertices = append(st.SampleVertices, int64(t.VertexID(i)))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

func writeError(w http.ResponseWriter, status int, msg string, retryMS int64) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, RetryAfterMS: retryMS})
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 so clients actually back off.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
