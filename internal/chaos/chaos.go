// Package chaos provides deterministic fault injection for the distributed
// runtime. An Injector holds a set of named failpoints ("sites") threaded
// through the cluster transport and the GoFS loader; each site fires either
// with a seeded per-site probability or exactly on its Nth hit. A nil
// *Injector is the production configuration: every method is nil-safe and
// costs one predicted branch, so instrumented call sites need no
// configuration guards and the zero-allocation superstep hot path is
// preserved.
//
// The canonical sites are:
//
//	wire.send    outgoing cluster frame about to be encoded
//	wire.recv    incoming cluster frame about to be decoded
//	barrier.eos  end-of-superstep / end-of-timestep barrier frame send
//	gofs.load    GoFS pack materialization
//
// Injectors are configured from a flag spec (see Parse):
//
//	tsrun -chaos 'seed=42,wire.send=0.01,gofs.load=at:3'
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Well-known site names. Call sites pass these constants so the flag
// grammar, the metrics labels, and the documentation agree.
const (
	SiteWireSend   = "wire.send"
	SiteWireRecv   = "wire.recv"
	SiteBarrierEOS = "barrier.eos"
	SiteGoFSLoad   = "gofs.load"
)

// Error is the fault an injector raises: it names the site so call sites
// and tests can distinguish injected faults from organic ones.
type Error struct {
	Site string
	Hit  int64 // 1-based hit count at which the site fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected fault at %s (hit %d)", e.Site, e.Hit)
}

// IsInjected reports whether err is (or wraps) an injected chaos fault.
func IsInjected(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if _, ok := err.(*Error); ok {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// site is one configured failpoint.
type site struct {
	name string
	// prob, when > 0, is the per-hit firing probability.
	prob float64
	// atNth, when > 0, fires the site exactly on its Nth hit (1-based).
	atNth int64

	hits  atomic.Int64
	fired atomic.Int64

	// Per-site RNG so one site's draw sequence is independent of how other
	// sites' hits interleave; guarded by mu (sites can be hit from many
	// goroutines).
	mu  sync.Mutex
	rng *rand.Rand
}

// Injector is a set of configured failpoints. The zero value has no sites
// and never fires; a nil Injector is the recommended "chaos off" value.
type Injector struct {
	seed  int64
	sites map[string]*site
}

// New creates an empty injector with the given seed. Sites are added with
// SetProb / SetAt, or configure everything at once with Parse.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: map[string]*site{}}
}

// Seed returns the injector's seed (0 for a nil injector).
func (inj *Injector) Seed() int64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

func (inj *Injector) ensure(name string) *site {
	s := inj.sites[name]
	if s == nil {
		// Derive the per-site stream from (seed, site name) so adding a
		// site never perturbs another site's draw sequence.
		h := fnv.New64a()
		h.Write([]byte(name))
		s = &site{name: name, rng: rand.New(rand.NewSource(inj.seed ^ int64(h.Sum64())))}
		inj.sites[name] = s
	}
	return s
}

// SetProb arms a site with a per-hit firing probability in [0, 1].
func (inj *Injector) SetProb(name string, p float64) *Injector {
	s := inj.ensure(name)
	s.prob = p
	s.atNth = 0
	return inj
}

// SetAt arms a site to fire exactly on its nth hit (1-based).
func (inj *Injector) SetAt(name string, nth int64) *Injector {
	s := inj.ensure(name)
	s.atNth = nth
	s.prob = 0
	return inj
}

// Hit registers one hit of a site and returns a non-nil *Error when the
// site fires. Nil-safe: a nil injector (or an unarmed site) never fires.
func (inj *Injector) Hit(name string) error {
	if inj == nil {
		return nil
	}
	s := inj.sites[name]
	if s == nil {
		return nil
	}
	n := s.hits.Add(1)
	fire := false
	switch {
	case s.atNth > 0:
		fire = n == s.atNth
	case s.prob > 0:
		s.mu.Lock()
		fire = s.rng.Float64() < s.prob
		s.mu.Unlock()
	}
	if !fire {
		return nil
	}
	s.fired.Add(1)
	return &Error{Site: name, Hit: n}
}

// ShouldFail is Hit for call sites that act on the fault themselves (e.g.
// severing a connection) rather than propagating an error.
func (inj *Injector) ShouldFail(name string) bool {
	return inj.Hit(name) != nil
}

// Stats reports, per armed site, how many times it was hit and fired.
func (inj *Injector) Stats() map[string][2]int64 {
	if inj == nil {
		return nil
	}
	out := make(map[string][2]int64, len(inj.sites))
	for name, s := range inj.sites {
		out[name] = [2]int64{s.hits.Load(), s.fired.Load()}
	}
	return out
}

// String renders the injector back in flag-spec form (sites sorted).
func (inj *Injector) String() string {
	if inj == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", inj.seed)}
	names := make([]string, 0, len(inj.sites))
	for name := range inj.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := inj.sites[name]
		if s.atNth > 0 {
			parts = append(parts, fmt.Sprintf("%s=at:%d", name, s.atNth))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%g", name, s.prob))
		}
	}
	return strings.Join(parts, ",")
}

// Parse builds an injector from a comma-separated spec. Each element is
// either `seed=N` or `<site>=<trigger>` where trigger is a probability in
// (0, 1] (`wire.send=0.01`) or an at-Nth-hit mark (`gofs.load=at:3`). An
// empty spec yields a nil injector (chaos off). Unknown site names are
// accepted — failpoints are matched by string at the call site — but a
// malformed trigger is an error.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	type arm struct {
		name  string
		prob  float64
		atNth int64
	}
	var arms []arm
	for _, elem := range strings.Split(spec, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			continue
		}
		key, val, ok := strings.Cut(elem, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: element %q is not key=value", elem)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "seed" {
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			seed = s
			continue
		}
		if nth, found := strings.CutPrefix(val, "at:"); found {
			n, err := strconv.ParseInt(nth, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("chaos: site %s: bad at-hit trigger %q (want at:N with N >= 1)", key, val)
			}
			arms = append(arms, arm{name: key, atNth: n})
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("chaos: site %s: bad probability %q (want (0,1] or at:N)", key, val)
		}
		arms = append(arms, arm{name: key, prob: p})
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("chaos: spec %q arms no sites", spec)
	}
	inj := New(seed)
	for _, a := range arms {
		if a.atNth > 0 {
			inj.SetAt(a.name, a.atNth)
		} else {
			inj.SetProb(a.name, a.prob)
		}
	}
	return inj, nil
}
