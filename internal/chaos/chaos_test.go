package chaos

import (
	"errors"
	"fmt"
	"testing"
)

func TestParseGrammar(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, inj *Injector)
	}{
		{spec: "", check: func(t *testing.T, inj *Injector) {
			if inj != nil {
				t.Fatalf("empty spec: got %v, want nil injector", inj)
			}
		}},
		{spec: "seed=42,wire.send=0.01,gofs.load=at:3", check: func(t *testing.T, inj *Injector) {
			if inj.Seed() != 42 {
				t.Errorf("seed = %d, want 42", inj.Seed())
			}
			if got := inj.String(); got != "seed=42,gofs.load=at:3,wire.send=0.01" {
				t.Errorf("String() = %q", got)
			}
		}},
		{spec: " wire.recv = 1.0 ", check: func(t *testing.T, inj *Injector) {
			if err := inj.Hit(SiteWireRecv); err == nil {
				t.Error("probability-1.0 site did not fire")
			}
		}},
		{spec: "seed=7", wantErr: true},          // no sites armed
		{spec: "wire.send", wantErr: true},       // not key=value
		{spec: "wire.send=2.0", wantErr: true},   // probability out of range
		{spec: "wire.send=0", wantErr: true},     // zero probability arms nothing
		{spec: "wire.send=at:0", wantErr: true},  // at-hit must be >= 1
		{spec: "wire.send=at:xy", wantErr: true}, // malformed at-hit
		{spec: "seed=abc,wire.send=0.5", wantErr: true},
	}
	for _, tc := range cases {
		inj, err := Parse(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): no error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if tc.check != nil {
			tc.check(t, inj)
		}
	}
}

func TestAtNthHitFiresExactlyOnce(t *testing.T) {
	inj, err := Parse("gofs.load=at:3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		err := inj.Hit(SiteGoFSLoad)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v, want fire exactly at hit 3", i, err)
		}
		if i == 3 {
			var ce *Error
			if !errors.As(err, &ce) || ce.Site != SiteGoFSLoad || ce.Hit != 3 {
				t.Fatalf("fault = %#v, want site gofs.load hit 3", err)
			}
			if !IsInjected(fmt.Errorf("wrapped: %w", err)) {
				t.Error("IsInjected failed to see through wrapping")
			}
		}
	}
	stats := inj.Stats()
	if got := stats[SiteGoFSLoad]; got != [2]int64{10, 1} {
		t.Errorf("stats = %v, want [10 1]", got)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	fires := func(seed int64) []int {
		inj := New(seed).SetProb(SiteWireSend, 0.2)
		var out []int
		for i := 0; i < 200; i++ {
			if inj.Hit(SiteWireSend) != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := fires(42), fires(42)
	if len(a) == 0 {
		t.Fatal("0.2 probability never fired in 200 hits")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if c := fires(43); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Errorf("different seeds produced identical fire pattern %v", a)
	}
}

// TestSiteStreamsIndependent: interleaving hits on another site must not
// perturb a site's own (seeded) draw sequence.
func TestSiteStreamsIndependent(t *testing.T) {
	solo := New(9).SetProb(SiteWireSend, 0.1)
	var a []int
	for i := 0; i < 100; i++ {
		if solo.Hit(SiteWireSend) != nil {
			a = append(a, i)
		}
	}
	mixed := New(9).SetProb(SiteWireSend, 0.1).SetProb(SiteWireRecv, 0.5)
	var b []int
	for i := 0; i < 100; i++ {
		mixed.Hit(SiteWireRecv)
		if mixed.Hit(SiteWireSend) != nil {
			b = append(b, i)
		}
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("wire.recv traffic perturbed wire.send stream: %v vs %v", a, b)
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	if err := inj.Hit(SiteWireSend); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if inj.ShouldFail(SiteWireRecv) {
		t.Fatal("nil injector ShouldFail")
	}
	if inj.Stats() != nil || inj.String() != "" || inj.Seed() != 0 {
		t.Fatal("nil injector accessors not zero-valued")
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	inj := New(1).SetAt(SiteGoFSLoad, 1)
	for i := 0; i < 50; i++ {
		if err := inj.Hit(SiteWireSend); err != nil {
			t.Fatalf("unarmed site fired: %v", err)
		}
	}
}

func BenchmarkNilInjectorHit(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj.Hit(SiteWireSend) != nil {
			b.Fatal("fired")
		}
	}
}
