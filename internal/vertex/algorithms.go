package vertex

import (
	"math"
	"sync"

	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// Inf is the label of an unreached vertex.
var Inf = math.Inf(1)

// ssspProgram implements vertex-centric single-source shortest path. With
// nil weights every edge costs 1 and the run degenerates to BFS, matching
// the paper's Giraph baseline ("running SSSP on an unweighted graph
// degenerates to a BFS traversal").
type ssspProgram struct {
	src     int
	weights []float64 // template edge slot -> weight; nil = unweighted

	mu   sync.Mutex
	dist []float64
}

func (p *ssspProgram) Compute(ctx *Context, u int, superstep int, msgs []float64) {
	t := ctx.Template()
	relax := func(d float64) {
		lo, hi := t.OutEdges(u)
		for e := lo; e < hi; e++ {
			w := 1.0
			if p.weights != nil {
				w = p.weights[e]
			}
			ctx.SendTo(t.Target(e), d+w)
		}
	}
	if superstep == 0 {
		if u == p.src {
			p.setDist(u, 0)
			relax(0)
		}
		ctx.VoteToHalt()
		return
	}
	best := Inf
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < p.getDist(u) {
		p.setDist(u, best)
		relax(best)
	}
	ctx.VoteToHalt()
}

// Distinct vertices own distinct dist slots, but the race detector cannot
// see that, and halted re-activation means two supersteps may touch the
// same slot; a mutex keeps the baseline simple and safely slower — which is
// faithful to the comparison (Giraph pays synchronization costs per vertex
// too).
func (p *ssspProgram) getDist(u int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dist[u]
}

func (p *ssspProgram) setDist(u int, d float64) {
	p.mu.Lock()
	p.dist[u] = d
	p.mu.Unlock()
}

// SSSP runs vertex-centric single-source shortest path from src over the
// given edge weights (template edge-slot indexed; nil = unweighted/BFS).
// Returns per-vertex distances (Inf when unreachable).
func SSSP(t *graph.Template, a *partition.Assignment, cfg Config, src int, weights []float64) ([]float64, *Result, error) {
	if cfg.Combiner == nil {
		cfg.Combiner = math.Min
	}
	e, err := NewEngine(t, a, cfg)
	if err != nil {
		return nil, nil, err
	}
	prog := &ssspProgram{src: src, weights: weights, dist: make([]float64, t.NumVertices())}
	for i := range prog.dist {
		prog.dist[i] = Inf
	}
	res, err := e.Run(prog, nil)
	if err != nil {
		return nil, nil, err
	}
	return prog.dist, res, nil
}

// BFS runs vertex-centric breadth-first search from src and returns hop
// counts (Inf when unreachable).
func BFS(t *graph.Template, a *partition.Assignment, cfg Config, src int) ([]float64, *Result, error) {
	return SSSP(t, a, cfg, src, nil)
}

// pagerankProgram is vertex-centric PageRank with fixed iterations: every
// superstep each vertex folds incoming contributions, updates its rank and
// re-emits shares — one message per out-edge per iteration, the message
// volume the subgraph-centric formulation avoids by batching per boundary.
type pagerankProgram struct {
	damping    float64
	iterations int
	n          float64
	rank       []float64
}

func (p *pagerankProgram) Compute(ctx *Context, u int, superstep int, msgs []float64) {
	t := ctx.Template()
	if superstep == 0 {
		p.rank[u] = 1 / p.n
	} else {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		p.rank[u] = (1-p.damping)/p.n + p.damping*sum
	}
	if superstep >= p.iterations {
		ctx.VoteToHalt()
		return
	}
	lo, hi := t.OutEdges(u)
	if hi == lo {
		return // dangling: mass leaks, same semantics as the subgraph version
	}
	share := p.rank[u] / float64(hi-lo)
	for e := lo; e < hi; e++ {
		ctx.SendTo(t.Target(e), share)
	}
}

// PageRank runs vertex-centric PageRank for a fixed number of iterations
// and returns the template-indexed rank vector. A sum combiner folds
// same-destination contributions.
func PageRank(t *graph.Template, a *partition.Assignment, cfg Config, damping float64, iterations int) ([]float64, *Result, error) {
	if cfg.Combiner == nil {
		cfg.Combiner = func(x, y float64) float64 { return x + y }
	}
	e, err := NewEngine(t, a, cfg)
	if err != nil {
		return nil, nil, err
	}
	prog := &pagerankProgram{
		damping: damping, iterations: iterations,
		n: float64(t.NumVertices()), rank: make([]float64, t.NumVertices()),
	}
	res, err := e.Run(prog, nil)
	if err != nil {
		return nil, nil, err
	}
	return prog.rank, res, nil
}
