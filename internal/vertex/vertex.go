// Package vertex implements a Pregel/Giraph-style vertex-centric BSP engine
// as the paper's baseline (§IV-C compares Apache Giraph against GoFFish).
// The user's Compute method runs once per active vertex per superstep and
// communicates through per-vertex messages; supersteps are barriered and a
// vertex halts until a message reactivates it.
//
// The engine runs over the same partition assignment as the
// subgraph-centric engine so comparisons isolate the programming model: the
// vertex-centric model pays per-vertex scheduling overhead and needs a
// superstep per traversal hop, where the subgraph-centric model traverses
// whole subgraphs inside one superstep — exactly the structural gap the
// paper attributes Giraph's slowdown to.
package vertex

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// Program is vertex-centric user logic. Messages are float64 values, the
// common currency of traversal algorithms (distances, levels); a Combiner
// can fold messages destined for the same vertex.
type Program interface {
	// Compute runs on an active vertex u (template internal index).
	Compute(ctx *Context, u int, superstep int, msgs []float64)
}

// ComputeFunc adapts a function to Program.
type ComputeFunc func(ctx *Context, u int, superstep int, msgs []float64)

// Compute implements Program.
func (f ComputeFunc) Compute(ctx *Context, u int, superstep int, msgs []float64) {
	f(ctx, u, superstep, msgs)
}

// Combiner folds two messages for the same destination vertex (e.g. min for
// SSSP). Associative and commutative.
type Combiner func(a, b float64) float64

// Config parameterizes the engine.
type Config struct {
	// CoresPerHost bounds compute concurrency per partition worker
	// (default 2).
	CoresPerHost int
	// MaxSupersteps aborts non-terminating programs (default 10^6).
	MaxSupersteps int
	// Combiner, if set, folds messages per destination vertex at the
	// sender side, as Giraph combiners do.
	Combiner Combiner
	// SuperstepLatency is a modeled per-superstep framework coordination
	// cost added to the simulated cluster time. Giraph-class systems pay
	// Hadoop/ZooKeeper coordination on every superstep; model it here.
	SuperstepLatency time.Duration
	// SerialMeasure forces compute chunks to execute one at a time for
	// exact timing; defaults to automatic (enabled when GOMAXPROCS is 1).
	SerialMeasure *bool
}

func (c Config) cores() int {
	if c.CoresPerHost <= 0 {
		return 2
	}
	return c.CoresPerHost
}

func (c Config) maxSupersteps() int {
	if c.MaxSupersteps <= 0 {
		return 1_000_000
	}
	return c.MaxSupersteps
}

func (c Config) serialMeasure() bool {
	if c.SerialMeasure != nil {
		return *c.SerialMeasure
	}
	return runtime.GOMAXPROCS(0) == 1
}

// Message is an initial message addressed to a vertex.
type Message struct {
	To    int
	Value float64
}

// Context is handed to each Compute invocation.
type Context struct {
	engine    *Engine
	worker    *vworker
	u         int
	superstep int
	halted    bool
	// local batch of outgoing messages, flushed after compute.
	out []Message
}

// Template returns the graph topology.
func (c *Context) Template() *graph.Template { return c.engine.template }

// Superstep returns the current superstep (0-based).
func (c *Context) Superstep() int { return c.superstep }

// SendTo sends a value to vertex v (template internal index), delivered
// next superstep.
func (c *Context) SendTo(v int, value float64) {
	c.out = append(c.out, Message{To: v, Value: value})
}

// VoteToHalt deactivates this vertex until a message arrives.
func (c *Context) VoteToHalt() { c.halted = true }

// vworker owns one partition's vertices.
type vworker struct {
	pid   int
	verts []int32 // global indices owned by this partition

	mu sync.Mutex
	// inbox state for the *next* superstep, keyed by global vertex index.
	inboxVal map[int32][]float64
	// combined inbox when a combiner is configured.
	combVal map[int32]float64

	halted map[int32]bool
}

// Engine executes vertex-centric programs.
type Engine struct {
	cfg      Config
	template *graph.Template
	owner    []int32 // vertex -> partition
	workers  []*vworker
	serialMu sync.Mutex
}

// NewEngine builds an engine over a template and partition assignment.
func NewEngine(t *graph.Template, a *partition.Assignment, cfg Config) (*Engine, error) {
	if err := a.Validate(t); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, template: t, owner: a.Parts}
	for p := 0; p < a.K; p++ {
		e.workers = append(e.workers, &vworker{
			pid:      p,
			inboxVal: map[int32][]float64{},
			combVal:  map[int32]float64{},
			halted:   map[int32]bool{},
		})
	}
	for v := 0; v < t.NumVertices(); v++ {
		w := e.workers[a.Parts[v]]
		w.verts = append(w.verts, int32(v))
	}
	return e, nil
}

// Result summarizes a run.
type Result struct {
	Supersteps int
	Wall       time.Duration
	Messages   int64
	// SimTime is the simulated cluster time: per superstep, the slowest
	// host's compute (max over its per-core chunks) plus its flush time.
	SimTime time.Duration
}

// Run executes prog until all vertices halt with no messages in flight.
// Initial messages are delivered at superstep 0, in which every vertex is
// active.
func (e *Engine) Run(prog Program, initial []Message) (*Result, error) {
	start := time.Now()
	for _, w := range e.workers {
		w.inboxVal = map[int32][]float64{}
		w.combVal = map[int32]float64{}
		w.halted = map[int32]bool{}
	}
	e.routeInitial(initial)

	var totalMsgs int64
	res := &Result{}
	for superstep := 0; ; superstep++ {
		if superstep >= e.cfg.maxSupersteps() {
			return nil, fmt.Errorf("vertex: exceeded %d supersteps", e.cfg.maxSupersteps())
		}
		var (
			wg        sync.WaitGroup
			sentMu    sync.Mutex
			totalSent int64
		)
		stepSim := make([]time.Duration, len(e.workers))
		snap := newBarrier(len(e.workers))
		end := newBarrier(len(e.workers))
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *vworker) {
				defer wg.Done()
				// Snapshot inbox.
				w.mu.Lock()
				inbox := w.inboxVal
				comb := w.combVal
				w.inboxVal = map[int32][]float64{}
				w.combVal = map[int32]float64{}
				w.mu.Unlock()
				snap.arrive()

				// Active vertices: all at superstep 0, else mail or not
				// halted.
				var active []int32
				if superstep == 0 {
					active = w.verts
				} else {
					for _, v := range w.verts {
						_, hasMail := inbox[v]
						if e.cfg.Combiner != nil {
							_, hasMail = comb[v]
						}
						if hasMail || !w.halted[v] {
							active = append(active, v)
						}
					}
				}

				// Compute in chunks across cores.
				cores := e.cfg.cores()
				var cwg sync.WaitGroup
				outs := make([][]Message, cores)
				haltSets := make([][]int32, cores)
				wakeSets := make([][]int32, cores)
				chunkDur := make([]time.Duration, cores)
				chunk := (len(active) + cores - 1) / cores
				for c := 0; c < cores; c++ {
					lo := c * chunk
					if lo >= len(active) {
						break
					}
					hi := lo + chunk
					if hi > len(active) {
						hi = len(active)
					}
					cwg.Add(1)
					go func(c, lo, hi int) {
						defer cwg.Done()
						if e.cfg.serialMeasure() {
							e.serialMu.Lock()
							defer e.serialMu.Unlock()
						}
						chunkStart := time.Now()
						defer func() { chunkDur[c] = time.Since(chunkStart) }()
						var msgBuf []float64
						for _, v := range active[lo:hi] {
							msgBuf = msgBuf[:0]
							if e.cfg.Combiner != nil {
								if val, ok := comb[v]; ok {
									msgBuf = append(msgBuf, val)
								}
							} else {
								msgBuf = append(msgBuf, inbox[v]...)
							}
							ctx := &Context{engine: e, worker: w, u: int(v), superstep: superstep}
							prog.Compute(ctx, int(v), superstep, msgBuf)
							if ctx.halted {
								haltSets[c] = append(haltSets[c], v)
							} else {
								wakeSets[c] = append(wakeSets[c], v)
							}
							outs[c] = append(outs[c], ctx.out...)
						}
					}(c, lo, hi)
				}
				cwg.Wait()

				// Apply halt decisions.
				for c := range haltSets {
					for _, v := range haltSets[c] {
						w.halted[v] = true
					}
					for _, v := range wakeSets[c] {
						w.halted[v] = false
					}
				}

				// Host compute time: chunks run in parallel on the host's
				// cores, so the host finishes with its slowest chunk.
				var hostCompute time.Duration
				for _, d := range chunkDur {
					if d > hostCompute {
						hostCompute = d
					}
				}

				// Flush. Wire count reflects sender-side combining.
				flushStart := time.Now()
				var sent int64
				for c := range outs {
					sent += e.route(outs[c])
				}
				hostTime := hostCompute + time.Since(flushStart)
				sentMu.Lock()
				totalSent += sent
				stepSim[w.pid] = hostTime
				sentMu.Unlock()
				end.arrive()
			}(w)
		}
		wg.Wait()
		totalMsgs += totalSent
		var clusterStep time.Duration
		for _, t := range stepSim {
			if t > clusterStep {
				clusterStep = t
			}
		}
		clusterStep += e.cfg.SuperstepLatency
		res.SimTime += clusterStep
		res.Supersteps = superstep + 1

		if totalSent == 0 {
			halted := true
			for _, w := range e.workers {
				for _, v := range w.verts {
					if !w.halted[v] {
						halted = false
						break
					}
				}
				if !halted {
					break
				}
			}
			if halted {
				break
			}
		}
	}
	res.Wall = time.Since(start)
	res.Messages = totalMsgs
	return res, nil
}

func (e *Engine) routeInitial(initial []Message) {
	e.route(initial)
}

// route delivers messages to owning partitions, applying the combiner when
// configured. With a combiner, messages for the same destination vertex are
// folded on the sender side first — as Giraph combiners do — and the return
// value counts the messages that actually cross the wire.
func (e *Engine) route(msgs []Message) int64 {
	if len(msgs) == 0 {
		return 0
	}
	if e.cfg.Combiner != nil {
		folded := make(map[int]float64, len(msgs))
		for _, m := range msgs {
			if m.To < 0 || m.To >= len(e.owner) {
				continue
			}
			if old, ok := folded[m.To]; ok {
				folded[m.To] = e.cfg.Combiner(old, m.Value)
			} else {
				folded[m.To] = m.Value
			}
		}
		fresh := make([]Message, 0, len(folded))
		for to, val := range folded {
			fresh = append(fresh, Message{To: to, Value: val})
		}
		msgs = fresh
	}
	byPart := map[int][]Message{}
	var wire int64
	for _, m := range msgs {
		if m.To < 0 || m.To >= len(e.owner) {
			continue
		}
		p := int(e.owner[m.To])
		byPart[p] = append(byPart[p], m)
		wire++
	}
	for p, group := range byPart {
		w := e.workers[p]
		w.mu.Lock()
		if e.cfg.Combiner != nil {
			for _, m := range group {
				v := int32(m.To)
				if old, ok := w.combVal[v]; ok {
					w.combVal[v] = e.cfg.Combiner(old, m.Value)
				} else {
					w.combVal[v] = m.Value
				}
			}
		} else {
			for _, m := range group {
				w.inboxVal[int32(m.To)] = append(w.inboxVal[int32(m.To)], m.Value)
			}
		}
		w.mu.Unlock()
	}
	return wire
}

// barrier is a one-shot completion barrier.
type barrier struct {
	mu    sync.Mutex
	count int
	total int
	ch    chan struct{}
}

func newBarrier(total int) *barrier {
	return &barrier{total: total, ch: make(chan struct{})}
}

func (b *barrier) arrive() {
	b.mu.Lock()
	b.count++
	if b.count == b.total {
		close(b.ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-b.ch
}
