package vertex

import (
	"container/heap"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

func assignmentFor(tb testing.TB, g *graph.Template, k int) *partition.Assignment {
	tb.Helper()
	a, err := (partition.Multilevel{Seed: 7}).Partition(g, k)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func TestEngineHaltImmediately(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 1})
	a := assignmentFor(t, g, 2)
	e, err := NewEngine(g, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var calls int64
	prog := ComputeFunc(func(ctx *Context, u int, superstep int, msgs []float64) {
		atomic.AddInt64(&calls, 1)
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", res.Supersteps)
	}
	if calls != int64(g.NumVertices()) {
		t.Errorf("calls = %d, want %d", calls, g.NumVertices())
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.1, Seed: 2})
	a := assignmentFor(t, g, 3)
	src := g.NumVertices() / 2
	dist, res, err := BFS(g, a, Config{}, src)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.BFSLevels(g, src)
	for v := range dist {
		switch {
		case want[v] < 0 && !math.IsInf(dist[v], 1):
			t.Fatalf("vertex %d: unreachable but dist %v", v, dist[v])
		case want[v] >= 0 && dist[v] != float64(want[v]):
			t.Fatalf("vertex %d: dist %v, want %d", v, dist[v], want[v])
		}
	}
	// Superstep count ≈ eccentricity of src + constant: the structural cost
	// the paper attributes to vertex-centric BFS.
	maxLevel := int32(0)
	for _, d := range want {
		if d > maxLevel {
			maxLevel = d
		}
	}
	if res.Supersteps < int(maxLevel) {
		t.Errorf("supersteps %d below source eccentricity %d", res.Supersteps, maxLevel)
	}
}

// dijkstra is the reference SSSP implementation.
func dijkstra(g *graph.Template, src int, weights []float64) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &vheap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vitem)
		if it.d > dist[it.v] {
			continue
		}
		lo, hi := g.OutEdges(it.v)
		for e := lo; e < hi; e++ {
			w := 1.0
			if weights != nil {
				w = weights[e]
			}
			nd := it.d + w
			v := g.Target(e)
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, vitem{v, nd})
			}
		}
	}
	return dist
}

type vitem struct {
	v int
	d float64
}
type vheap []vitem

func (h vheap) Len() int            { return len(h) }
func (h vheap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vheap) Push(x interface{}) { *h = append(*h, x.(vitem)) }
func (h *vheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func TestSSSPWeightedMatchesDijkstra(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 300, M: 2, Seed: 3})
	a := assignmentFor(t, g, 3)
	rng := rand.New(rand.NewSource(4))
	weights := make([]float64, g.NumEdges())
	for e := range weights {
		weights[e] = 1 + rng.Float64()*9
	}
	src := 0
	dist, _, err := SSSP(g, a, Config{}, src, weights)
	if err != nil {
		t.Fatal(err)
	}
	want := dijkstra(g, src, weights)
	for v := range dist {
		if math.Abs(dist[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestSSSPRandomGraphsProperty compares against Dijkstra on random graphs
// with random weights and partition counts.
func TestSSSPRandomGraphsProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		k := 1 + int(kRaw)%4
		if k > n {
			k = n
		}
		b := graph.NewBuilder("rand", nil, nil)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i))
		}
		for e := 0; e < 3*n; e++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		a := &partition.Assignment{K: k, Parts: make([]int32, n)}
		for v := range a.Parts {
			a.Parts[v] = int32(rng.Intn(k))
		}
		weights := make([]float64, g.NumEdges())
		for e := range weights {
			weights[e] = float64(1 + rng.Intn(20))
		}
		src := rng.Intn(n)
		dist, _, err := SSSP(g, a, Config{CoresPerHost: 2}, src, weights)
		if err != nil {
			return false
		}
		want := dijkstra(g, src, weights)
		for v := range dist {
			if math.IsInf(want[v], 1) != math.IsInf(dist[v], 1) {
				return false
			}
			if !math.IsInf(want[v], 1) && math.Abs(dist[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinerReducesMessages(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 500, M: 3, Seed: 5})
	a := assignmentFor(t, g, 2)
	src := 0
	_, withComb, err := SSSP(g, a, Config{Combiner: math.Min}, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without combiner (explicitly disabled through a fresh engine).
	e, err := NewEngine(g, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog := &ssspProgram{src: src, dist: make([]float64, g.NumVertices())}
	for i := range prog.dist {
		prog.dist[i] = Inf
	}
	noComb, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if withComb.Messages >= noComb.Messages {
		t.Errorf("combiner did not reduce messages: %d vs %d", withComb.Messages, noComb.Messages)
	}
}

func TestInitialMessages(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 4, Cols: 4, Seed: 6})
	a := assignmentFor(t, g, 2)
	e, err := NewEngine(g, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Value
	prog := ComputeFunc(func(ctx *Context, u int, superstep int, msgs []float64) {
		if u == 5 && superstep == 0 && len(msgs) > 0 {
			got.Store(msgs[0])
		}
		ctx.VoteToHalt()
	})
	if _, err := e.Run(prog, []Message{{To: 5, Value: 42}}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 42.0 {
		t.Errorf("initial message = %v, want 42", got.Load())
	}
}

func TestMaxSuperstepsEnforced(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 7})
	a := assignmentFor(t, g, 1)
	e, err := NewEngine(g, a, Config{MaxSupersteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog := ComputeFunc(func(ctx *Context, u int, superstep int, msgs []float64) {
		// never halts
	})
	if _, err := e.Run(prog, nil); err == nil {
		t.Fatal("expected MaxSupersteps error")
	}
}

func TestBadAssignmentRejected(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 8})
	bad := &partition.Assignment{K: 2, Parts: make([]int32, 1)}
	if _, err := NewEngine(g, bad, Config{}); err == nil {
		t.Fatal("bad assignment accepted")
	}
}

func TestMessagesToInvalidVertexDropped(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 9})
	a := assignmentFor(t, g, 1)
	e, err := NewEngine(g, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog := ComputeFunc(func(ctx *Context, u int, superstep int, msgs []float64) {
		if superstep == 0 && u == 0 {
			ctx.SendTo(-1, 1)
			ctx.SendTo(10_000, 1)
		}
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps > 2 {
		t.Errorf("supersteps = %d", res.Supersteps)
	}
}

func TestVertexPageRankMatchesSubgraphSemantics(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 300, M: 2, Seed: 41})
	a := assignmentFor(t, g, 3)
	const iters = 12
	ranks, res, err := PageRank(g, a, Config{}, 0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	// Reference power iteration (same fixed-iteration, leaky-dangling
	// semantics).
	n := g.NumVertices()
	want := make([]float64, n)
	next := make([]float64, n)
	for v := range want {
		want[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for v := range next {
			next[v] = 0
		}
		for u := 0; u < n; u++ {
			lo, hi := g.OutEdges(u)
			if hi == lo {
				continue
			}
			share := want[u] / float64(hi-lo)
			for e := lo; e < hi; e++ {
				next[g.Target(e)] += share
			}
		}
		for v := range want {
			want[v] = (1-0.85)/float64(n) + 0.85*next[v]
		}
	}
	for v := range ranks {
		if math.Abs(ranks[v]-want[v]) > 1e-10 {
			t.Fatalf("vertex %d: %v, want %v", v, ranks[v], want[v])
		}
	}
	if res.Supersteps != iters+1 {
		t.Errorf("supersteps = %d, want %d", res.Supersteps, iters+1)
	}
}
