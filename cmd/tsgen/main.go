// Command tsgen generates a synthetic time-series graph dataset and writes
// it as a GoFS dataset directory: a template, a partition assignment and
// slice files with temporal packing and subgraph binning.
//
// Usage:
//
//	tsgen -out data/road -graph road -rows 120 -cols 120 -steps 50 -data road -parts 6
//	tsgen -out data/social -graph smallworld -n 30000 -steps 50 -data tweets -hit 0.02 -parts 6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsgraph"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsgen: ")

	var (
		out       = flag.String("out", "", "output dataset directory (required)")
		graphKind = flag.String("graph", "road", "template kind: road | smallworld")
		edgeList  = flag.String("edgelist", "", "read the template from a SNAP edge-list file instead of generating (e.g. roadNet-CA.txt)")
		undirect  = flag.Bool("undirected", true, "treat the edge list as undirected (SNAP road networks)")
		rows      = flag.Int("rows", 120, "road lattice rows")
		cols      = flag.Int("cols", 120, "road lattice cols")
		removeFr  = flag.Float64("remove", 0.15, "road edge removal fraction")
		n         = flag.Int("n", 30000, "small-world vertex count")
		m         = flag.Int("m", 2, "small-world attachment degree")
		steps     = flag.Int("steps", 50, "number of instances (timesteps)")
		delta     = flag.Int64("delta", 60, "period δ between instances")
		data      = flag.String("data", "road", "instance generator: road (latencies) | tweets (SIR memes) | both")
		latMin    = flag.Float64("latmin", 1, "minimum edge latency")
		latMax    = flag.Float64("latmax", 20, "maximum edge latency")
		churn     = flag.Float64("churn", 1, "per-timestep fraction of edge latencies re-randomized; 1 = fully uncorrelated (the paper's behavior), values in (0,1) give delta-friendly temporal correlation")
		meme      = flag.String("meme", "#meme", "meme hashtag for the tweet generator")
		hit       = flag.Float64("hit", 0.30, "SIR hit probability")
		seeds     = flag.Int("memeseeds", 5, "initially infected vertices per meme")
		parts     = flag.Int("parts", 6, "number of partitions (hosts)")
		pack      = flag.Int("pack", 10, "GoFS temporal packing")
		bin       = flag.Int("bin", 5, "GoFS subgraph binning")
		compress  = flag.Bool("compress", false, "gzip-compress slice payloads")
		snapEvery = flag.Int("snapshot-every", 0, "delta-encode slices with a full snapshot every N timesteps; 0 = full format (v1)")
		seed      = flag.Int64("seed", 42, "random seed")
		bundleDir = flag.String("bundle-dir", "", "directory for SIGQUIT-triggered diagnostic bundles (empty disables)")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tsgen", obs.ReadBuildInfo())
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *bundleDir != "" {
		// Batch tool: no detectors or debug server, but kill -QUIT on a
		// stuck generation still yields a full profile bundle.
		defer diag.ArmSIGQUIT(&diag.Bundler{Dir: *bundleDir, Tool: "tsgen"})()
	}

	var tmpl *tsgraph.Template
	if *edgeList != "" {
		f, err := os.Open(*edgeList)
		if err != nil {
			log.Fatal(err)
		}
		vs, err := tsgraph.NewSchema([]string{tsgraph.AttrTweets, tsgraph.AttrLoad},
			[]tsgraph.AttrType{tsgraph.TStringList, tsgraph.TFloat})
		if err != nil {
			log.Fatal(err)
		}
		es, err := tsgraph.NewSchema([]string{tsgraph.AttrLatency}, []tsgraph.AttrType{tsgraph.TFloat})
		if err != nil {
			log.Fatal(err)
		}
		tmpl, err = tsgraph.ReadEdgeList(f, tsgraph.EdgeListOptions{
			Undirected: *undirect, Name: *edgeList,
			VertexSchema: vs, EdgeSchema: es,
		})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		switch *graphKind {
		case "road":
			tmpl = tsgraph.RoadNetwork(tsgraph.RoadConfig{
				Rows: *rows, Cols: *cols, RemoveFrac: *removeFr,
				ShortcutFrac: 0.01, Seed: *seed, Name: "ROAD",
			})
		case "smallworld":
			tmpl = tsgraph.SmallWorld(tsgraph.SmallWorldConfig{
				N: *n, M: *m, Seed: *seed, Name: "SMALLWORLD",
			})
		default:
			log.Fatalf("unknown -graph %q (road|smallworld)", *graphKind)
		}
	}
	stats := tsgraph.ComputeStats(tmpl, 4)
	fmt.Printf("template %s: %d vertices, %d edges, diameter >= %d\n",
		stats.Name, stats.Vertices, stats.Edges, stats.DiameterLB)

	var coll *tsgraph.Collection
	switch *data {
	case "road":
		c, err := tsgraph.RandomLatencies(tmpl, tsgraph.LatencyConfig{
			Timesteps: *steps, T0: 0, Delta: *delta,
			Min: *latMin, Max: *latMax, Seed: *seed + 1, Churn: *churn,
		})
		if err != nil {
			log.Fatal(err)
		}
		coll = c
	case "tweets", "both":
		sir, err := tsgraph.SIRTweets(tmpl, tsgraph.SIRConfig{
			Timesteps: *steps, T0: 0, Delta: *delta,
			Memes: []string{*meme}, SeedsPerMeme: *seeds,
			HitProb: *hit, BackgroundTags: 20, Seed: *seed + 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		coll = sir.Collection
		if *data == "both" {
			lat, err := tsgraph.RandomLatencies(tmpl, tsgraph.LatencyConfig{
				Timesteps: *steps, T0: 0, Delta: *delta,
				Min: *latMin, Max: *latMax, Seed: *seed + 1, Churn: *churn,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Merge: copy latency columns into the tweet collection's
			// instances (they share the template and time axis).
			li := tmpl.EdgeSchema().Index(tsgraph.AttrLatency)
			for s := 0; s < *steps; s++ {
				coll.Instance(s).EdgeCols[li] = lat.Instance(s).EdgeCols[li]
			}
		}
	default:
		log.Fatalf("unknown -data %q (road|tweets|both)", *data)
	}

	// Fill vertex loads whenever the template carries the attribute, so
	// ranking workloads (tsrun -algo topn) have data to chew on.
	if tmpl.VertexSchema().Index(tsgraph.AttrLoad) >= 0 {
		if err := tsgraph.RandomLoads(coll, *seed+3, 0, 100); err != nil {
			log.Fatal(err)
		}
	}

	assign, err := tsgraph.PartitionMultilevel(tmpl, *parts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cut, total := assign.EdgeCut(tmpl)
	fmt.Printf("partitioned into %d parts: %.3f%% edge cut, imbalance %.3f\n",
		*parts, 100*float64(cut)/float64(total), assign.Imbalance())

	if err := tsgraph.WriteDatasetOptions(*out, coll, assign, tsgraph.StoreOptions{
		Pack: *pack, Bin: *bin, Compress: *compress, SnapshotEvery: *snapEvery,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d instances to %s (pack=%d bin=%d compress=%v snapshot-every=%d)\n",
		*steps, *out, *pack, *bin, *compress, *snapEvery)
}
