// Command tspart analyzes the partitioning of a GoFS dataset: it reports
// the stored assignment's balance and edge cut, and optionally re-partitions
// the template with each strategy at several host counts, reproducing the
// paper's §IV-B edge-cut table for any dataset.
//
// Usage:
//
//	tspart -in data/road
//	tspart -in data/road -sweep 3,6,9
//	tspart -in data/road -rewrite data/road-delta -snapshot-every 10
//
// The -rewrite mode converts a dataset to new storage options (temporal
// packing, binning, compression, delta encoding) while keeping the stored
// partition assignment, so existing full-format datasets can be migrated to
// the delta format without regenerating them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"tsgraph"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tspart: ")

	var (
		in        = flag.String("in", "", "GoFS dataset directory (required)")
		sweep     = flag.String("sweep", "", "comma-separated partition counts to re-partition with every strategy")
		seed      = flag.Int64("seed", 42, "partitioner seed")
		rewrite   = flag.String("rewrite", "", "write the dataset to this directory with new storage options, keeping the stored assignment")
		snapEvery = flag.Int("snapshot-every", 0, "rewrite: delta-encode with a full snapshot every N timesteps; 0 = full format")
		rwPack    = flag.Int("pack", 0, "rewrite: temporal packing (0 = keep stored)")
		rwBin     = flag.Int("bin", 0, "rewrite: subgraph binning (0 = keep stored)")
		compress  = flag.Bool("compress", false, "rewrite: gzip-compress slice payloads (default: keep stored setting)")
		bundleDir = flag.String("bundle-dir", "", "directory for SIGQUIT-triggered diagnostic bundles (empty disables)")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tspart", obs.ReadBuildInfo())
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *bundleDir != "" {
		// Batch tool: no detectors or debug server, but kill -QUIT on a
		// stuck sweep or rewrite still yields a full profile bundle.
		defer diag.ArmSIGQUIT(&diag.Bundler{Dir: *bundleDir, Tool: "tspart"})()
	}

	store, err := tsgraph.OpenDataset(*in)
	if err != nil {
		log.Fatal(err)
	}
	tmpl := store.Template()
	assign := store.Assignment()

	stats := tsgraph.ComputeStats(tmpl, 4)
	fmt.Printf("template %s: %d vertices, %d edges, diameter >= %d, avg degree %.2f\n",
		stats.Name, stats.Vertices, stats.Edges, stats.DiameterLB, stats.AvgDegree)

	cut, total := assign.EdgeCut(tmpl)
	fmt.Printf("stored assignment: %d parts, %.3f%% edge cut, imbalance %.3f\n",
		assign.K, 100*float64(cut)/float64(total), assign.Imbalance())

	if *rewrite != "" {
		m := store.Manifest()
		opts := tsgraph.StoreOptions{
			Pack: m.Pack, Bin: m.Bin, Compress: m.Compress, SnapshotEvery: *snapEvery,
		}
		if *rwPack > 0 {
			opts.Pack = *rwPack
		}
		if *rwBin > 0 {
			opts.Bin = *rwBin
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "compress" {
				opts.Compress = *compress
			}
		})
		coll, err := store.LoadAll()
		if err != nil {
			log.Fatal(err)
		}
		if err := tsgraph.WriteDatasetOptions(*rewrite, coll, assign, opts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rewrote %d instances to %s (pack=%d bin=%d compress=%v snapshot-every=%d)\n",
			coll.NumInstances(), *rewrite, opts.Pack, opts.Bin, opts.Compress, opts.SnapshotEvery)
		return
	}
	parts, err := subgraph.Build(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	for _, pd := range parts {
		fmt.Printf("  partition %d: %d vertices, %d subgraphs, %d remote edges\n",
			pd.PID, pd.NumVertices(), len(pd.Subgraphs), len(pd.Remote))
	}

	if *sweep == "" {
		return
	}
	var ks []int
	for _, f := range strings.Split(*sweep, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 {
			log.Fatalf("bad -sweep entry %q", f)
		}
		ks = append(ks, k)
	}
	strategies := []partition.Partitioner{
		partition.Hash{},
		partition.BFSGrow{},
		partition.Multilevel{Seed: *seed},
	}
	fmt.Printf("\n%-12s", "strategy")
	for _, k := range ks {
		fmt.Printf(" %12s", fmt.Sprintf("k=%d cut%%", k))
	}
	fmt.Println()
	for _, s := range strategies {
		fmt.Printf("%-12s", s.Name())
		for _, k := range ks {
			a, err := s.Partition(tmpl, k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.3f%%", a.CutFraction(tmpl)*100)
		}
		fmt.Println()
	}
}
