// Command tsrun executes a time-series graph algorithm over a GoFS dataset,
// loading instances incrementally and printing results plus the run's
// timing decomposition.
//
// Usage:
//
//	tsrun -in data/road -algo tdsp -source 0
//	tsrun -in data/social -algo meme -meme '#meme'
//	tsrun -in data/social -algo hashtag -meme '#meme'
//	tsrun -in data/road -algo sssp -source 0 -timestep 3
//	tsrun -in data/road -algo cc
//
// Distributed mode runs one tsrun process per host over TCP (tdsp and meme;
// the dataset directory must be readable by every process, and partitions
// are assigned to nodes round-robin):
//
//	tsrun -in data/road -algo tdsp -cluster-rank 0 -cluster-addrs host0:7700,host1:7700
//	tsrun -in data/road -algo tdsp -cluster-rank 1 -cluster-addrs host0:7700,host1:7700
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"os"
	"strings"
	"time"

	"tsgraph"
	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/chaos"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
	"tsgraph/internal/obs/live"
	"tsgraph/internal/serve"
	"tsgraph/internal/subgraph"
)

// flagValues carries the parsed flags whose combinations can conflict.
type flagValues struct {
	algo, caddrs, ckptDir, mergedOut  string
	crank, ckptEvery, prefetch, cores int
	resume, watchdog, resilient       bool
}

// validateFlags rejects incoherent flag combinations up front and all at
// once, so one failed invocation reports every problem instead of the
// first (some of these used to surface minutes into a run, or never).
func validateFlags(v flagValues) (errs []string) {
	seqDep := v.algo == "tdsp" || v.algo == "meme"
	if v.cores < 1 {
		errs = append(errs, fmt.Sprintf("-cores must be >= 1, got %d", v.cores))
	}
	if v.prefetch < 0 {
		errs = append(errs, fmt.Sprintf("-prefetch must be >= 0, got %d", v.prefetch))
	}
	if v.resume && v.ckptDir == "" {
		errs = append(errs, "-resume needs -checkpoint")
	}
	if v.ckptDir != "" {
		if !seqDep {
			errs = append(errs, fmt.Sprintf("-checkpoint supports the sequentially dependent algorithms (tdsp, meme), not %q", v.algo))
		}
		if v.ckptEvery < 1 {
			errs = append(errs, fmt.Sprintf("-checkpoint-every must be >= 1, got %d", v.ckptEvery))
		}
	}
	if v.crank >= 0 {
		addrs := strings.Split(v.caddrs, ",")
		switch {
		case v.caddrs == "":
			errs = append(errs, "-cluster-rank needs -cluster-addrs")
		case v.crank >= len(addrs):
			errs = append(errs, fmt.Sprintf("-cluster-rank %d outside the %d-node -cluster-addrs list", v.crank, len(addrs)))
		}
		if !seqDep {
			errs = append(errs, fmt.Sprintf("distributed mode supports tdsp and meme, not %q", v.algo))
		}
		if v.prefetch > 0 {
			errs = append(errs, "-prefetch applies to single-process runs only")
		}
	} else {
		if v.caddrs != "" {
			errs = append(errs, "-cluster-addrs needs -cluster-rank")
		}
		if v.mergedOut != "" {
			errs = append(errs, "-merged-trace needs a distributed run (-cluster-rank)")
		}
		if v.watchdog {
			errs = append(errs, "-watchdog needs a distributed run (-cluster-rank)")
		}
		if v.resilient {
			errs = append(errs, "-resilient needs a distributed run (-cluster-rank)")
		}
	}
	return errs
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsrun: ")

	var (
		in        = flag.String("in", "", "GoFS dataset directory (required)")
		algo      = flag.String("algo", "tdsp", "algorithm: tdsp | meme | hashtag | sssp | bfs | cc | pagerank | topn")
		source    = flag.Int64("source", 0, "source vertex id (tdsp/sssp/bfs)")
		meme      = flag.String("meme", "#meme", "hashtag to track/aggregate")
		timestep  = flag.Int("timestep", 0, "instance for single-instance algorithms")
		cores     = flag.Int("cores", 2, "simulated cores per host")
		verbose   = flag.Bool("v", false, "print every output record")
		crank     = flag.Int("cluster-rank", -1, "this process's rank in a distributed run (-1 = single process)")
		caddrs    = flag.String("cluster-addrs", "", "comma-separated rank-ordered node addresses for a distributed run")
		obsAddr   = flag.String("obs", "", "serve the observability endpoint (/metrics, /debug/trace, /debug/pprof) on this address, e.g. :9188")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file (load in Perfetto) at exit")
		metrOut   = flag.String("metrics-out", "", "write a Prometheus text-format metrics snapshot at exit")
		prefetch  = flag.Int("prefetch", 0, "decode up to N instances ahead of compute (0 = inline loads)")
		mergedOut = flag.String("merged-trace", "", "distributed mode: gather every rank's trace shard at rank 0 and write the clock-aligned merged Chrome trace there (pass on every rank)")
		watchdog  = flag.Bool("watchdog", false, "distributed mode: warn when a rank fails to reach a superstep barrier in time")
		wdFactor  = flag.Float64("watchdog-factor", 4, "stall threshold: k x the trailing median superstep duration")
		wdMin     = flag.Duration("watchdog-min", 250*time.Millisecond, "absolute stall threshold floor")
		chaosSpec = flag.String("chaos", "", "deterministic fault injection spec, e.g. 'seed=42,wire.send=0.01,gofs.load=at:3' (sites: wire.send, wire.recv, barrier.eos, gofs.load; arm each with a probability or at:N)")
		resilient = flag.Bool("resilient", false, "distributed mode: resilient transport — retry failed sends with backoff, re-dial lost peers, replay unacked frames. Pass on every rank or none (the handshake differs); pair with -chaos wire faults to survive them")
		ckptDir   = flag.String("checkpoint", "", "tdsp/meme: persist program state into this directory after each timestep boundary")
		ckptEvery = flag.Int("checkpoint-every", 1, "with -checkpoint: write only every Nth boundary")
		resume    = flag.Bool("resume", false, "restore the newest usable checkpoint from -checkpoint before running (distributed ranks agree on the minimum)")
		logLevel  = flag.String("log-level", "info", "structured log level: debug | info | warn | error")
		logFormat = flag.String("log-format", "text", "structured log format: text | json")
		bundleDir = flag.String("bundle-dir", "", "directory for diagnostic bundles; arms runtime anomaly detectors, SIGQUIT capture, and /debug/bundle on -obs (empty disables)")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tsrun", obs.ReadBuildInfo())
		return
	}
	logger, err := live.InitLogging(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}
	var logRing *diag.LogRing
	if *bundleDir != "" {
		logRing = diag.NewLogRing(512)
		slog.SetDefault(slog.New(logRing.Tee(logger.Handler())))
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if errs := validateFlags(flagValues{
		algo: *algo, caddrs: *caddrs, ckptDir: *ckptDir, mergedOut: *mergedOut,
		crank: *crank, ckptEvery: *ckptEvery, prefetch: *prefetch, cores: *cores,
		resume: *resume, watchdog: *watchdog, resilient: *resilient,
	}); len(errs) > 0 {
		for _, e := range errs {
			log.Print(e)
		}
		os.Exit(2)
	}
	inj, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Observability: one tracer + registry for the process. The tracer is
	// created (and enabled) whenever any export path wants it — including
	// the cross-rank merge, which needs every rank recording.
	var tracer *obs.Tracer
	if *obsAddr != "" || *traceOut != "" || *mergedOut != "" {
		tracer = obs.NewTracer(0)
		tracer.Enable()
		core.SetDefaultTracer(tracer)
	}
	reg := obs.NewRegistry(tracer)
	reg.Register(obs.ReadBuildInfo())
	sampler := diag.NewRuntimeSampler()
	reg.Register(sampler)

	// Diagnostics: a bundler armed on SIGQUIT, runtime anomaly detectors,
	// and (distributed mode) a detector over watchdog stall warnings that
	// runDistributed appends before starting the monitor.
	var bundler *diag.Bundler
	var monitor *diag.Monitor
	if *bundleDir != "" {
		bundler = &diag.Bundler{Dir: *bundleDir, Tool: "tsrun", Registry: reg, LogRing: logRing}
		if *obsAddr != "" || *traceOut != "" || *mergedOut != "" {
			bundler.Sections = []diag.Section{
				{Name: "trace.json", Write: func(w io.Writer) error { return obs.WriteChromeTrace(w, tracer) }},
			}
		}
		reg.Register(bundler)
		defer diag.ArmSIGQUIT(bundler)()
		monitor = &diag.Monitor{
			Detectors: []*diag.Detector{
				{Name: "goroutines", Signal: sampler.Goroutines, Factor: 3, Min: 200, Consecutive: 2},
				{Name: "heap_bytes", Signal: sampler.HeapBytes, Factor: 2.5, Min: 256 << 20, Consecutive: 2},
			},
			OnTrip: func(evs []diag.Evidence) {
				for _, ev := range evs {
					slog.Warn("diag: anomaly detector tripped", "evidence", ev.String())
				}
				if path, err := bundler.Capture(diag.Trigger{Cause: "detector", Evidence: evs}); err != nil {
					slog.Warn("diag: bundle capture skipped", "err", err)
				} else {
					slog.Info("diag: bundle captured", "bundle", path)
				}
			},
		}
		reg.Register(monitor)
		defer monitor.Close()
	}
	if *obsAddr != "" {
		srv, addr, err := obs.Serve(*obsAddr, reg, diag.Endpoints(bundler)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability endpoint on http://%s/\n", addr)
		// Shut the listener down on exit or SIGTERM so in-flight scrapes
		// complete instead of hitting a reset connection.
		defer serve.ShutdownOnSignal(srv, 2*time.Second)()
	}
	defer func() {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := obs.WriteChromeTrace(f, tracer); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote Chrome trace to %s (tracer %s)\n", *traceOut, tracer.Summary())
		}
		if *metrOut != "" {
			f, err := os.Create(*metrOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.WritePrometheus(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote metrics snapshot to %s\n", *metrOut)
		}
	}()

	store, err := tsgraph.OpenDataset(*in)
	if err != nil {
		log.Fatal(err)
	}
	tmpl := store.Template()
	assign := store.Assignment()
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	if *crank >= 0 {
		dopts := distOptions{
			tracer: tracer, mergedOut: *mergedOut,
			watchdog: *watchdog, wdFactor: *wdFactor, wdMin: *wdMin,
			profileLabels: *obsAddr != "",
			chaos:         inj,
			resilient:     *resilient,
			ckptDir:       *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
			diag: monitor,
		}
		runDistributed(store, *crank, strings.Split(*caddrs, ","), *algo, *source, *meme, *cores, reg, dopts)
		return
	}
	if monitor != nil {
		monitor.Start()
	}

	loader := tsgraph.NewLoader(store)
	loader.Chaos = inj
	var src tsgraph.InstanceSource = loader
	if *prefetch > 0 {
		ps := core.NewPrefetchSource(loader, *prefetch)
		defer ps.Close()
		src = ps
	}
	// Label compute goroutines for pprof only when a live profile consumer
	// exists (the labels allocate, so they are opt-in).
	cfg := tsgraph.EngineConfig{CoresPerHost: *cores, ProfileLabels: *obsAddr != ""}
	rec := tsgraph.NewRecorder(assign.K)
	reg.ObserveRecorder(rec)
	manifest := store.Manifest()
	fmt.Printf("dataset %s: %d vertices, %d instances, %d partitions\n",
		tmpl.Name, tmpl.NumVertices(), store.Timesteps(), assign.K)

	srcIdx := tmpl.VertexIndex(tsgraph.VertexID(*source))
	wallStart := time.Now()
	var res *tsgraph.Result

	switch *algo {
	case "tdsp":
		if srcIdx < 0 {
			log.Fatalf("source vertex %d not in template", *source)
		}
		var arrivals []float64
		var r *tsgraph.Result
		if *ckptDir != "" {
			// The wrapper owns its Job, so the checkpointed variant builds
			// the Job here to reach the checkpoint fields.
			prog := algorithms.NewTDSP(parts, srcIdx, float64(manifest.Delta), tsgraph.AttrLatency)
			r, err = core.Run(&core.Job{
				Template: tmpl, Parts: parts, Source: src, Program: prog,
				Pattern: core.SequentiallyDependent, Config: cfg, Recorder: rec,
				CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
			})
			if err != nil {
				log.Fatal(err)
			}
			arrivals = prog.Arrivals(parts, tmpl)
		} else if arrivals, r, err = tsgraph.TDSP(tmpl, parts, srcIdx, src,
			float64(manifest.Delta), tsgraph.AttrLatency, cfg, rec); err != nil {
			log.Fatal(err)
		}
		res = r
		reached := 0
		for v, a := range arrivals {
			if !math.IsInf(a, 1) {
				reached++
				if *verbose {
					fmt.Printf("tdsp %d = %.1f\n", tmpl.VertexID(v), a)
				}
			}
		}
		fmt.Printf("tdsp: reached %d of %d vertices in %d timesteps\n",
			reached, tmpl.NumVertices(), r.TimestepsRun)
	case "meme":
		var coloredAt []int32
		var r *tsgraph.Result
		if *ckptDir != "" {
			prog := algorithms.NewMeme(parts, *meme, tsgraph.AttrTweets)
			r, err = core.Run(&core.Job{
				Template: tmpl, Parts: parts, Source: src, Program: prog,
				Pattern: core.SequentiallyDependent, Config: cfg, Recorder: rec,
				CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
			})
			if err != nil {
				log.Fatal(err)
			}
			coloredAt = prog.ColoredAt(parts, tmpl)
		} else if coloredAt, r, err = tsgraph.TrackMeme(tmpl, parts, *meme, tsgraph.AttrTweets, src, cfg, rec); err != nil {
			log.Fatal(err)
		}
		res = r
		colored := 0
		for v, at := range coloredAt {
			if at >= 0 {
				colored++
				if *verbose {
					fmt.Printf("colored %d @ t%d\n", tmpl.VertexID(v), at)
				}
			}
		}
		fmt.Printf("meme %s: colored %d of %d vertices\n", *meme, colored, tmpl.NumVertices())
	case "hashtag":
		stats, r, err := tsgraph.AggregateHashtag(tmpl, parts, *meme, tsgraph.AttrTweets, src, cfg, rec, 1)
		if err != nil {
			log.Fatal(err)
		}
		res = r
		fmt.Printf("hashtag %s: total %d, peak at t%d, max rate %+d/step\n",
			stats.Hashtag, stats.Total, stats.PeakTimestep, stats.MaxRate)
		if *verbose {
			for t, c := range stats.Counts {
				fmt.Printf("  t%-3d %d\n", t, c)
			}
		}
	case "sssp", "bfs":
		if srcIdx < 0 {
			log.Fatalf("source vertex %d not in template", *source)
		}
		attr := tsgraph.AttrLatency
		if *algo == "bfs" {
			attr = ""
		}
		dist, r, err := tsgraph.SSSP(tmpl, parts, srcIdx, src, *timestep, attr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res = r
		reached := 0
		for _, d := range dist {
			if !math.IsInf(d, 1) {
				reached++
			}
		}
		fmt.Printf("%s from %d at t%d: reached %d vertices in %d supersteps\n",
			*algo, *source, *timestep, reached, r.Supersteps)
	case "cc":
		labels, r, err := tsgraph.ConnectedComponents(tmpl, parts, src, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res = r
		comps := map[int64]int{}
		for _, l := range labels {
			comps[l]++
		}
		fmt.Printf("cc: %d weakly connected components\n", len(comps))
	case "pagerank":
		ranks, r, err := tsgraph.PageRank(tmpl, parts, src, 0.85, 30, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res = r
		best, bestRank := 0, 0.0
		for v, rk := range ranks {
			if rk > bestRank {
				best, bestRank = v, rk
			}
		}
		fmt.Printf("pagerank: top vertex %d with rank %.6f (30 iterations, d=0.85)\n",
			tmpl.VertexID(best), bestRank)
	case "topn":
		top, r, err := tsgraph.TopN(tmpl, parts, tsgraph.AttrLoad, 5, src, cfg, rec, 4)
		if err != nil {
			log.Fatal(err)
		}
		res = r
		fmt.Printf("topn: per-timestep top-5 vertices by %q\n", tsgraph.AttrLoad)
		if *verbose {
			for ts, list := range top {
				fmt.Printf("  t%-3d", ts)
				for _, vv := range list {
					fmt.Printf(" %d(%.1f)", vv.Vertex, vv.Value)
				}
				fmt.Println()
			}
		}
	default:
		log.Fatalf("unknown -algo %q", *algo)
	}

	fmt.Printf("wall %v | simulated cluster %v | %d supersteps\n",
		time.Since(wallStart).Round(time.Millisecond),
		res.SimTime.Round(time.Millisecond), res.Supersteps)
	if rec.NumTimesteps() > 0 {
		fmt.Printf("per-partition utilization (compute / partition-overhead / sync):\n")
		for _, u := range rec.Utilizations() {
			fmt.Printf("  partition %d: %5.1f%% / %5.1f%% / %5.1f%%\n",
				u.Partition, u.ComputeFrac()*100, u.FlushFrac()*100, u.BarrierFrac()*100)
		}
		fmt.Printf("messages: %d sent, %d dropped\n", rec.TotalMessages(), rec.TotalMsgsDropped())
		if skew := rec.ComputeSkew(); skew > 0 {
			fmt.Printf("compute skew: %.2fx max/median partition\n", skew)
		}
		if pf := rec.PrefetchedTimesteps(); pf > 0 {
			fmt.Printf("prefetch: %d/%d timesteps served ahead; %v of %v decode hidden behind compute\n",
				pf, rec.NumTimesteps(),
				rec.TotalLoadOverlap().Round(time.Millisecond),
				rec.TotalLoadFetch().Round(time.Millisecond))
		}
	}
	if tracer != nil {
		fmt.Println(tracer.Skew())
	}
}

// distOptions carries the observability knobs into a distributed run.
type distOptions struct {
	tracer        *obs.Tracer
	mergedOut     string
	watchdog      bool
	wdFactor      float64
	wdMin         time.Duration
	profileLabels bool
	chaos         *chaos.Injector
	resilient     bool
	ckptDir       string
	ckptEvery     int
	resume        bool
	diag          *diag.Monitor
}

// runDistributed executes tdsp or meme as one node of a TCP mesh.
func runDistributed(store *tsgraph.Store, rank int, addrs []string, algo string, source int64, meme string, cores int, reg *obs.Registry, opts distOptions) {
	tmpl := store.Template()
	assign := store.Assignment()
	parts, err := subgraph.Build(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	owner := make([]int32, assign.K)
	for p := range owner {
		owner[p] = int32(p % len(addrs))
	}
	var local []*subgraph.PartitionData
	for _, pd := range parts {
		if int(owner[pd.PID]) == rank {
			local = append(local, pd)
		}
	}
	var wd *obs.Watchdog
	if opts.watchdog {
		wd = obs.NewWatchdog(obs.WatchdogConfig{
			Parties: len(addrs),
			Factor:  opts.wdFactor,
			MinWait: opts.wdMin,
			Tracer:  opts.tracer,
			Describe: func(party int) string {
				var owned []int
				for p, r := range owner {
					if int(r) == party {
						owned = append(owned, p)
					}
				}
				return fmt.Sprintf("rank %d (partitions %v)", party, owned)
			},
		})
		defer wd.Close()
		reg.Register(wd)
	}
	if opts.diag != nil {
		if wd != nil {
			// Any stall warning since the last evaluation round is an anomaly
			// worth a bundle: capture the mesh's state while the straggler is
			// still straggling.
			opts.diag.Detectors = append(opts.diag.Detectors, &diag.Detector{
				Name:      "watchdog_stalls",
				Signal:    func() float64 { return float64(len(wd.Warnings())) },
				Delta:     true,
				Threshold: 0.5,
			})
		}
		opts.diag.Start()
	}
	var resil *cluster.Resilience
	if opts.resilient {
		resil = &cluster.Resilience{} // all defaults; see cluster.Resilience
	}
	node, err := cluster.New(cluster.Config{
		Rank: rank, Addrs: addrs, Owner: owner,
		Tracer: opts.tracer, Watchdog: wd,
		Resilience: resil, Chaos: opts.chaos,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	reg.Register(node)
	// Serve this rank's shard (spans + rank-0 clock alignment) for HTTP
	// pull-based merging alongside the wire gather.
	reg.SetShardSource(node.Shard)

	cfg := bsp.Config{CoresPerHost: cores, ProfileLabels: opts.profileLabels}
	engine := bsp.NewEngineRemote(local, cfg, node)
	node.Bind(engine)
	fmt.Printf("rank %d/%d: owning partitions %v; connecting mesh...\n", rank, len(addrs), node.LocalPartitions())
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}

	rec := tsgraph.NewRecorder(assign.K)
	reg.ObserveRecorder(rec)
	loader := tsgraph.NewLoader(store)
	loader.Chaos = opts.chaos
	job := &core.Job{
		Template:        tmpl,
		Parts:           local,
		Source:          loader,
		Pattern:         core.SequentiallyDependent,
		Config:          cfg,
		Recorder:        rec,
		Remote:          node,
		Coordinator:     node,
		GlobalSubgraphs: subgraph.TotalSubgraphs(parts),
		CheckpointDir:   opts.ckptDir,
		CheckpointEvery: opts.ckptEvery,
		CheckpointRank:  rank,
		Resume:          opts.resume,
	}
	if opts.resume {
		// A killed mesh leaves ranks with different newest checkpoints; all
		// must restart from the same timestep, so resume from the minimum.
		job.ResumeConsensus = node.AgreeResume
	}
	srcIdx := tmpl.VertexIndex(tsgraph.VertexID(source))
	var report func()
	switch algo {
	case "tdsp":
		prog := algorithms.NewTDSP(local, srcIdx, float64(store.Manifest().Delta), tsgraph.AttrLatency)
		job.Program = prog
		report = func() {
			arr := prog.Arrivals(local, tmpl)
			reached := 0
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					if !math.IsInf(arr[g], 1) {
						reached++
					}
				}
			}
			fmt.Printf("rank %d: tdsp finalized %d local vertices\n", rank, reached)
		}
	case "meme":
		prog := algorithms.NewMeme(local, meme, tsgraph.AttrTweets)
		job.Program = prog
		report = func() {
			at := prog.ColoredAt(local, tmpl)
			colored := 0
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					if at[g] >= 0 {
						colored++
					}
				}
			}
			fmt.Printf("rank %d: meme colored %d local vertices\n", rank, colored)
		}
	default:
		log.Fatalf("distributed mode supports tdsp and meme, not %q", algo)
	}

	start := time.Now()
	res, err := core.RunWithEngine(job, engine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank %d: %d timesteps, %d supersteps, wall %v, %d msgs dropped\n",
		rank, res.TimestepsRun, res.Supersteps, time.Since(start).Round(time.Millisecond),
		rec.TotalMsgsDropped())
	for _, ws := range node.WireStats() {
		if ws.Peer == rank {
			continue
		}
		fmt.Printf("rank %d <-> %d: sent %d frames / %d B (flush %v), recv %d frames / %d B\n",
			rank, ws.Peer, ws.FramesSent, ws.BytesSent, ws.FlushTime.Round(time.Microsecond),
			ws.FramesRecv, ws.BytesRecv)
	}
	if opts.mergedOut != "" {
		shards, err := node.GatherTraces(0)
		if err != nil {
			log.Fatal(err)
		}
		if rank == 0 {
			merged := obs.MergeTraces(shards)
			if err := merged.Validate(); err != nil {
				log.Fatalf("merged trace failed validation: %v", err)
			}
			f, err := os.Create(opts.mergedOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := merged.WriteChromeTrace(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			reg.Register(obs.ShardCollector{Shards: shards})
			fmt.Printf("rank 0: wrote merged Chrome trace (%d ranks, %d spans) to %s\n",
				len(merged.Ranks), len(merged.Spans), opts.mergedOut)
			fmt.Println(merged.ClusterSkew())
			for r, off := range node.ClockOffsets() {
				if r != rank {
					fmt.Printf("rank 0: clock offset to rank %d: %v\n", r, off)
				}
			}
		}
	}
	// Peers may still be reading this rank's final frames; exiting now would
	// reset those connections mid-exchange. Announce completion and wait for
	// everyone (bounded, so a dead peer cannot hold a finished run hostage).
	node.Quiesce(5 * time.Second)
	report()
}
