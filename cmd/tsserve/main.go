// Command tsserve is the online query-serving daemon: it loads a GoFS
// time-series graph dataset once, keeps the template and partitions
// resident with hot instance packs behind a bounded LRU, and answers
// HTTP/JSON queries (TDSP point-to-point, windowed top-N, meme
// reachability). Compatible concurrent queries are coalesced into
// micro-batches — many TDSP sources become one multi-source sweep — and
// results are cached by canonical query key.
//
// Usage:
//
//	tsserve -in data/road -addr :8090
//	curl -s localhost:8090/query -d '{"kind":"tdsp","source":0,"target":63}'
//	curl -s localhost:8090/stats
//	curl -s localhost:8090/metrics
//
// SIGTERM (or SIGINT) drains: admission stops, queued queries finish,
// open connections complete, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"tsgraph"
	"tsgraph/internal/chaos"
	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/ingest"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
	"tsgraph/internal/obs/live"
	"tsgraph/internal/serve"
	"tsgraph/internal/shard"
)

// delaySource is the chaos wrapper for serving experiments: when the
// gofs.load site fires, the instance load stalls for the configured delay
// instead of failing, manufacturing a deterministically slow query whose
// trace can then be pulled from /debug/flight.
type delaySource struct {
	src   core.InstanceSource
	inj   *chaos.Injector
	delay time.Duration
}

func (d *delaySource) Timesteps() int { return d.src.Timesteps() }

func (d *delaySource) Load(ts int) (*graph.Instance, error) {
	if d.inj.ShouldFail(chaos.SiteGoFSLoad) {
		time.Sleep(d.delay)
	}
	return d.src.Load(ts)
}

func main() {
	log.SetFlags(0)

	var (
		in          = flag.String("in", "", "GoFS dataset directory (required)")
		addr        = flag.String("addr", ":8090", "HTTP listen address")
		cores       = flag.Int("cores", 2, "BSP engine cores per sweep")
		batch       = flag.Int("batch", 64, "max compatible queries coalesced into one sweep (1 disables batching)")
		linger      = flag.Duration("batch-linger", 0, "hold a short batch open this long for more queries to join")
		queueCap    = flag.Int("queue", 256, "per-class admission queue bound")
		workers     = flag.Int("workers", 2, "concurrent sweep executors per query class")
		icachePacks = flag.Int("instance-cache", 4, "decoded instance packs kept resident (LRU)")
		icacheMB    = flag.Int("instance-cache-mb", 0, "bound the instance cache by decoded size instead of pack count (MiB; 0 = use -instance-cache)")
		rcacheSize  = flag.Int("result-cache", 1024, "answers kept in the keyed result cache (0 disables)")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-query deadline")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM drain")
		verbose     = flag.Bool("v", false, "log every query rejection")

		logLevel      = flag.String("log-level", "info", "structured log level: debug | info | warn | error (debug logs every request)")
		logFormat     = flag.String("log-format", "text", "structured log format: text | json")
		traceSlow     = flag.Duration("trace-slow", time.Second, "retain the lifecycle trace of any query at least this slow")
		flightCap     = flag.Int("flight-retain", 64, "retained traces kept in the flight recorder (FIFO eviction)")
		headRate      = flag.Float64("head-sample", 0.01, "fraction of ordinary queries whose traces are retained as a healthy baseline")
		sloTarget     = flag.Duration("slo-target", 0, "SLO latency target (0 = -trace-slow)")
		sloBudget     = flag.Float64("slo-error-budget", 0.01, "tolerated bad-request fraction for the SLO burn rate")
		ingestOn      = flag.Bool("ingest", false, "accept live mutations on POST /ingest (delta-encoded datasets only); replays the WAL before serving")
		retainMB      = flag.Int("retain-mb", 64, "with -ingest: byte budget for superseded tail-pack generations kept for slow readers")
		ingestLag     = flag.Duration("ingest-lag", 0, "with -ingest and -bundle-dir: trip the watermark-lag anomaly detector when no append published for this long (0 disables)")
		routerOn      = flag.Bool("router", false, "run as sharded-serving router: scatter queries over the -ranks replica groups, merge partials")
		rankN         = flag.Int("rank", -1, "run as sharded-serving rank N of -ranks (serves shard RPCs; HTTP is observability only)")
		ranksCSV      = flag.String("ranks", "", "comma-separated shard RPC addresses, rank-ordered (same list on the router and every rank)")
		meshCSV       = flag.String("mesh", "", "comma-separated cluster mesh addresses, rank-ordered (needed for replica groups of 2+ members)")
		replicas      = flag.Int("replicas", 1, "replica groups the -ranks split into (each group holds a full dataset copy)")
		shardTimeout  = flag.Duration("shard-timeout", 15*time.Second, "router: per-rank sweep RPC bound")
		shardCooldown = flag.Duration("shard-cooldown", 5*time.Second, "router: replica-group quarantine after a failed sweep")
		meshRecovery  = flag.Duration("mesh-recovery", 3*time.Second, "rank: how long a lost group-mesh connection may stay down before sweeps fail over")

		chaosSpec = flag.String("chaos", "", "chaos spec armed on instance loads, e.g. 'gofs.load=at:3' (site: gofs.load)")
		chaosWait = flag.Duration("chaos-delay", 100*time.Millisecond, "with -chaos: stall a faulted instance load this long instead of failing it")

		bundleDir     = flag.String("bundle-dir", "", "directory for diagnostic bundles; arms the anomaly detectors, SIGQUIT capture, and /debug/bundle (empty disables)")
		bundleRetain  = flag.Int("bundle-retain", 8, "diagnostic bundles kept on disk (oldest deleted first)")
		bundleProfile = flag.Duration("bundle-profile", 2*time.Second, "CPU profile window captured into each bundle")
		diagInterval  = flag.Duration("diag-interval", 5*time.Second, "anomaly-detector evaluation cadence")
		version       = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tsserve", obs.ReadBuildInfo())
		return
	}
	logger, err := live.InitLogging(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}
	var logRing *diag.LogRing
	if *bundleDir != "" {
		// Tee every record (including debug detail the stderr handler drops)
		// into a ring the bundles archive as logs.jsonl.
		logRing = diag.NewLogRing(512)
		slog.SetDefault(slog.New(logRing.Tee(logger.Handler())))
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	store, err := tsgraph.OpenDataset(*in)
	if err != nil {
		log.Fatal(err)
	}
	var layout shard.Layout
	if *routerOn || *rankN >= 0 {
		if *routerOn && *rankN >= 0 {
			log.Fatal("tsserve: -router and -rank are mutually exclusive")
		}
		if *ingestOn {
			log.Fatal("tsserve: -ingest is incompatible with sharded serving (router and ranks are read-only)")
		}
		if *routerOn && *chaosSpec != "" {
			log.Fatal("tsserve: -chaos applies to ranks, not the router (it never loads instances)")
		}
		layout = shard.Layout{Ranks: splitAddrs(*ranksCSV), Mesh: splitAddrs(*meshCSV), Replicas: *replicas}
		if err := layout.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	if *rankN >= 0 {
		runShardRank(store, layout, *rankN, *addr, *cores, *icachePacks, *icacheMB, *meshRecovery)
		return
	}
	// Ingest opens before anything serves: WAL replay completes here, so
	// the first query already sees the recovered head.
	var ing *ingest.Ingester
	if *ingestOn {
		ing, err = ingest.Open(store, ingest.Options{RetainBytes: int64(*retainMB) << 20})
		if err != nil {
			log.Fatal(err)
		}
		defer ing.Close()
	}
	tmpl := store.Template()
	assign := store.Assignment()
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	// The router never loads instance data — sweeps execute on the ranks —
	// so it skips the cache entirely and serves the store's watermark.
	var cache *gofs.InstanceCache
	var source core.InstanceSource
	if *routerOn {
		source = shard.HeadSource(store)
	} else if *icacheMB > 0 {
		cache = gofs.NewInstanceCacheBytes(store, int64(*icacheMB)<<20)
		source = cache
	} else {
		cache = gofs.NewInstanceCache(store, *icachePacks)
		source = cache
	}
	manifest := store.Manifest()

	// The chaos wrapper sits above the cache so an injected stall delays
	// the sweep even when the pack is resident. The per-class wrapper keeps
	// the same injector (faults count process-wide) while attributing pack
	// cache hits/misses to the query class whose sweep issued the load.
	var inj *chaos.Injector
	if *chaosSpec != "" {
		inj, err = chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		source = &delaySource{src: cache, inj: inj, delay: *chaosWait}
		fmt.Printf("tsserve: chaos armed: %s (delay %v)\n", *chaosSpec, *chaosWait)
	}
	classSource := func(class string) core.InstanceSource {
		var src core.InstanceSource = cache.ClassSource(class)
		if inj != nil {
			src = &delaySource{src: src, inj: inj, delay: *chaosWait}
		}
		return src
	}

	weightAttr := ""
	if tmpl.EdgeSchema().Index(tsgraph.AttrLatency) >= 0 {
		weightAttr = tsgraph.AttrLatency
	}
	tweetsAttr := ""
	if i := tmpl.VertexSchema().Index(tsgraph.AttrTweets); i >= 0 && tmpl.VertexSchema().Type(i) == graph.TStringList {
		tweetsAttr = tsgraph.AttrTweets
	}

	tracer := obs.NewTracer(0)
	tracer.Enable()
	reg := obs.NewRegistry(tracer)
	reg.Register(obs.ReadBuildInfo())

	recorder := live.NewRecorder(live.Config{
		Classes:        serve.ClassNames(),
		SlowThreshold:  *traceSlow,
		HeadSampleRate: *headRate,
		RetainCap:      *flightCap,
		SLOTarget:      *sloTarget,
		SLOErrorBudget: *sloBudget,
	})

	opt := serve.Options{
		Template: tmpl, Parts: parts, Source: source,
		Delta:      float64(manifest.Delta),
		WeightAttr: weightAttr, TweetsAttr: tweetsAttr,
		Cores:    *cores,
		MaxBatch: *batch, BatchLinger: *linger,
		QueueCap: *queueCap, Workers: *workers,
		ResultCacheSize: *rcacheSize,
		DefaultDeadline: *deadline,
		Tracer:          tracer,
		Live:            recorder,
	}
	if cache != nil {
		opt.InstanceStats = cache.Stats
		opt.ClassSource = classSource
	}
	var router *shard.Router
	if *routerOn {
		router, err = shard.NewRouter(shard.RouterConfig{
			Layout: layout, Template: tmpl, Assign: assign,
			Tracer: tracer, Timeout: *shardTimeout, DownCooldown: *shardCooldown,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer router.Close()
		opt.Sweeper = router
	}
	srv, err := serve.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	reg.Register(srv)
	reg.Register(store.Telemetry())
	if router != nil {
		reg.Register(router)
	}
	if ing != nil {
		reg.Register(ing.Metrics())
	}
	sampler := diag.NewRuntimeSampler()
	reg.Register(sampler)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	cacheBound := fmt.Sprintf("%d packs resident", *icachePacks)
	if *icacheMB > 0 {
		cacheBound = fmt.Sprintf("%d MiB resident", *icacheMB)
	}
	if *routerOn {
		cacheBound = "router, no instances resident"
	}
	fmt.Printf("tsserve: dataset %s: %d vertices, %d instances, %d partitions (pack=%d, %s)\n",
		tmpl.Name, tmpl.NumVertices(), store.Timesteps(), assign.K, manifest.Pack, cacheBound)
	if ing != nil {
		fmt.Printf("tsserve: ingest enabled: watermark %d, retain %d MiB of superseded packs\n",
			ing.Watermark(), *retainMB)
	}
	if router != nil {
		fmt.Printf("tsserve: router over %d ranks in %d replica groups (timeout %v, cooldown %v)\n",
			layout.NumRanks(), layout.NumGroups(), *shardTimeout, *shardCooldown)
	}
	fmt.Printf("tsserve: listening on %s\n", ln.Addr())

	var bundler *diag.Bundler
	var extras []obs.Endpoint
	if *bundleDir != "" {
		bundler = &diag.Bundler{
			Dir: *bundleDir, Tool: "tsserve",
			MaxBundles:      *bundleRetain,
			ProfileDuration: *bundleProfile,
			Registry:        reg,
			LogRing:         logRing,
		}
		extras = diag.Endpoints(bundler)
	}
	mux := serve.NewMux(srv, reg, extras...)
	if ing != nil {
		mux.Handle("/ingest", ing.Handler())
	}
	if bundler != nil {
		bundler.Sections = []diag.Section{
			diag.HandlerSection("flight.json", mux, "/debug/flight"),
			diag.HandlerSection("stats.json", mux, "/stats"),
			{Name: "trace.json", Write: func(w io.Writer) error { return obs.WriteChromeTrace(w, tracer) }},
		}
		reg.Register(bundler)

		// Detectors read the signals the serving layer already maintains; a
		// trip snapshots the process while the anomaly is still hot.
		detectors := []*diag.Detector{
			{Name: "slo_burn", Signal: recorder.SLO().BurnRate, Threshold: 1},
			{Name: "queue_wait", Signal: func() float64 { return srv.MaxQueueWait().Seconds() },
				Factor: 4, Min: 0.05, Consecutive: 2},
		}
		if cache != nil {
			var prevHits, prevLookups uint64
			hitRate := func() float64 {
				st := cache.Stats()
				lookups := st.Hits + st.Misses
				dh, dl := st.Hits-prevHits, lookups-prevLookups
				prevHits, prevLookups = st.Hits, lookups
				if dl == 0 {
					return 1 // idle window burns nothing
				}
				return float64(dh) / float64(dl)
			}
			detectors = append(detectors,
				&diag.Detector{Name: "cache_hit_rate", Signal: hitRate, Below: true, Factor: 2, Min: 0.5, Consecutive: 2})
		}
		detectors = append(detectors,
			&diag.Detector{Name: "goroutines", Signal: sampler.Goroutines, Factor: 3, Min: 200, Consecutive: 2},
			&diag.Detector{Name: "heap_bytes", Signal: sampler.HeapBytes, Factor: 2.5, Min: 256 << 20, Consecutive: 2})
		monitor := &diag.Monitor{
			Interval:  *diagInterval,
			Detectors: detectors,
			OnTrip: func(evs []diag.Evidence) {
				for _, ev := range evs {
					slog.Warn("diag: anomaly detector tripped", "evidence", ev.String())
				}
				path, err := bundler.Capture(diag.Trigger{Cause: "detector", Evidence: evs})
				if err != nil {
					slog.Warn("diag: bundle capture skipped", "err", err)
					return
				}
				slog.Info("diag: bundle captured", "bundle", path)
			},
		}
		if ing != nil && *ingestLag > 0 {
			// A stream that stops feeding is an upstream anomaly worth a
			// bundle: the watermark-lag signal is seconds since the last
			// published append.
			monitor.Detectors = append(monitor.Detectors, &diag.Detector{
				Name: "watermark_lag", Signal: ing.SecondsSinceLastAppend,
				Threshold: (*ingestLag).Seconds(), Consecutive: 2,
			})
		}
		reg.Register(monitor)
		monitor.Start()
		defer monitor.Close()
		defer diag.ArmSIGQUIT(bundler)()
		fmt.Printf("tsserve: diagnostics armed: bundles in %s, detectors every %v\n", *bundleDir, *diagInterval)
	}

	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Fatal(err)
	}
	stop() // a second signal kills the process the default way

	fmt.Println("tsserve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := serve.ShutdownHTTP(httpSrv, *drainWait); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if *verbose {
		m := srv.Metrics()
		for _, c := range []serve.Class{serve.ClassTDSP, serve.ClassTopN, serve.ClassMeme} {
			fmt.Printf("tsserve: %s: %d answered, %d rejected, %d sweeps\n",
				c, m.Answered(c), m.Rejected(c), m.Sweeps(c))
		}
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Printf("tsserve: instance cache: %d hits, %d misses, %d evictions, %v decoding\n",
			st.Hits, st.Misses, st.Evictions, st.DecodeTime.Round(time.Millisecond))
	}
	total, dropped, evicted, retained := recorder.Counters()
	fmt.Printf("tsserve: flight recorder: %d queries, %d traces retained, %d dropped, %d evicted; tracer %s\n",
		total, retained, dropped, evicted, tracer.Summary())
	fmt.Println("tsserve: drained, exiting")
}
