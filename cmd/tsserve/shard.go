package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"tsgraph"
	"tsgraph/internal/cluster"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/serve"
	"tsgraph/internal/shard"
)

// splitAddrs parses a comma-separated address list flag.
func splitAddrs(csv string) []string {
	if csv == "" {
		return nil
	}
	parts := strings.Split(csv, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// datasetAttrs picks the conventional weight and tweets attributes when
// the dataset carries them, mirroring the single-process startup.
func datasetAttrs(tmpl *graph.Template) (weightAttr, tweetsAttr string) {
	if tmpl.EdgeSchema().Index(tsgraph.AttrLatency) >= 0 {
		weightAttr = tsgraph.AttrLatency
	}
	if i := tmpl.VertexSchema().Index(tsgraph.AttrTweets); i >= 0 && tmpl.VertexSchema().Type(i) == graph.TStringList {
		tweetsAttr = tsgraph.AttrTweets
	}
	return weightAttr, tweetsAttr
}

// runShardRank runs tsserve as serving rank N of a sharded deployment: it
// loads only the instance data of its owned partitions, joins its replica
// group's cluster mesh, and answers the router's sweep RPCs. The HTTP
// listener carries only observability (/metrics, /healthz, /debug/*) —
// queries go to the router.
func runShardRank(store *gofs.Store, layout shard.Layout, rankN int, addr string,
	cores, icachePacks, icacheMB int, recovery time.Duration) {
	tmpl := store.Template()
	assign := store.Assignment()
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	local := shard.LocalParts(layout, rankN, assign.K)
	if local == nil {
		log.Fatalf("tsserve: rank %d not in layout of %d ranks", rankN, layout.NumRanks())
	}
	var cache *gofs.InstanceCache
	cacheBound := fmt.Sprintf("%d packs resident", icachePacks)
	if icacheMB > 0 {
		cache = gofs.NewInstanceCacheBytes(store, int64(icacheMB)<<20)
		cacheBound = fmt.Sprintf("%d MiB resident", icacheMB)
	} else {
		cache = gofs.NewInstanceCache(store, icachePacks)
	}
	cache.Restrict(local)

	rpcLn, err := net.Listen("tcp", layout.Ranks[rankN])
	if err != nil {
		log.Fatal(err)
	}
	group, member, members := layout.GroupOf(rankN)
	var meshLn net.Listener
	if len(members) > 1 {
		if meshLn, err = net.Listen("tcp", layout.Mesh[rankN]); err != nil {
			log.Fatal(err)
		}
	}
	tracer := obs.NewTracer(0)
	tracer.Enable()
	weightAttr, tweetsAttr := datasetAttrs(tmpl)
	rank, err := shard.NewRank(shard.RankConfig{
		Layout: layout, Rank: rankN,
		Template: tmpl, Parts: parts, Assign: assign,
		Source: cache, Delta: float64(store.Manifest().Delta),
		WeightAttr: weightAttr, TweetsAttr: tweetsAttr, Cores: cores,
		Tracer: tracer,
		// Serving tuning: a dead group peer must fail sweeps within a
		// couple of seconds so the router fails over to a replica, not
		// the batch-job default of patient 30s recovery.
		Resilience: &cluster.Resilience{
			MaxRetries: 4, BackoffBase: 5 * time.Millisecond,
			BackoffCap: 250 * time.Millisecond, RecoveryWindow: recovery,
		},
		Listener: rpcLn, MeshListener: meshLn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tsserve: rank %d: group %d member %d/%d, partitions %v of %d (%s)\n",
		rankN, group, member, len(members), local, assign.K, cacheBound)
	if len(members) > 1 {
		fmt.Printf("tsserve: rank %d: joining group mesh on %s...\n", rankN, layout.Mesh[rankN])
	}
	// Start blocks until the whole group's mesh is connected.
	if err := rank.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tsserve: rank %d: shard RPC on %s\n", rankN, rank.Addr())

	reg := obs.NewRegistry(tracer)
	reg.Register(obs.ReadBuildInfo())
	reg.Register(rank)
	reg.Register(store.Telemetry())
	if n := rank.Node(); n != nil {
		reg.Register(n)
	}
	mux := http.NewServeMux()
	mux.Handle("/", obs.NewHandler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tsserve: listening on %s\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("tsserve: draining...")
	rank.Close()
	st := cache.Stats()
	fmt.Printf("tsserve: instance cache: %d hits, %d misses, %d evictions, %v decoding\n",
		st.Hits, st.Misses, st.Evictions, st.DecodeTime.Round(time.Millisecond))
	fmt.Println("tsserve: drained, exiting")
}
