// Command tsbench regenerates the paper's evaluation: every table and
// figure of §IV plus the ablations listed in DESIGN.md §5, printed as text
// tables. Results are in simulated cluster time (K hosts × cores/host; see
// the experiments package doc) since the harness runs on a single machine.
//
// Usage:
//
//	tsbench                      # full suite at the default (medium) scale
//	tsbench -exp scalability     # just Fig 5a
//	tsbench -scale small -exp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/experiments"
	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
	"tsgraph/internal/obs/live"
	"tsgraph/internal/serve"
)

// benchSchema versions the -json output layout. Bump it whenever the
// top-level shape changes so perf-trajectory tooling can dispatch on it.
const benchSchema = 3

// gitSHA best-effort identifies the built revision: the module's VCS stamp
// when built from a checkout, else the CI-provided SHA, else "unknown".
func gitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}

var allExps = []string{
	"datasets", "edgecut", "scalability", "baseline", "timesteps",
	"progress", "utilization", "distributed",
	"ablation-partition", "ablation-temporal", "ablation-packing",
	"ablation-pagerank", "ablation-compress", "elastic", "prefetch", "chaos",
	"serve", "incremental", "obslive", "ingest", "shard",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsbench: ")

	var (
		exp       = flag.String("exp", "all", "comma-separated experiments: all | "+strings.Join(allExps, " | "))
		scale     = flag.String("scale", "medium", "dataset scale: small | medium | large")
		cores     = flag.Int("cores", 2, "simulated cores per host")
		seed      = flag.Int64("seed", 1, "partitioner seed")
		gcEvery   = flag.Int("gc", 20, "synchronized GC period for the timestep series (paper: 20)")
		repeats   = flag.Int("repeats", 3, "repetitions per scalability cell (min is kept)")
		workdir   = flag.String("workdir", "", "scratch directory for GoFS datasets (default: temp)")
		jsonOut   = flag.String("json", "", "also write all results as JSON to this file (durations in nanoseconds)")
		obsAddr   = flag.String("obs", "", "serve the observability endpoint (/metrics, /debug/trace, /debug/pprof) on this address, e.g. :9188")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file (load in Perfetto) at exit")
		mergedOut = flag.String("merged-trace", "", "write the distributed smoke's clock-aligned cross-rank Chrome trace to this file")
		nodesN    = flag.Int("nodes", 2, "loopback mesh size for the distributed smoke experiment")
		logLevel  = flag.String("log-level", "info", "structured log level: debug | info | warn | error")
		bundleDir = flag.String("bundle-dir", "", "directory for diagnostic bundles; arms SIGQUIT capture and /debug/bundle on -obs (empty disables)")
		logFormat = flag.String("log-format", "text", "structured log format: text | json")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tsbench", obs.ReadBuildInfo())
		return
	}
	logger, err := live.InitLogging(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	// Observability: one tracer + registry for the whole suite; the registry
	// follows whichever experiment's recorder is current via OnRecorder.
	var tracer *obs.Tracer
	if *obsAddr != "" || *traceOut != "" {
		tracer = obs.NewTracer(0)
		tracer.Enable()
		core.SetDefaultTracer(tracer)
	}
	reg := obs.NewRegistry(tracer)
	reg.Register(obs.ReadBuildInfo())
	reg.Register(diag.NewRuntimeSampler())
	experiments.OnRecorder = reg.ObserveRecorder
	var bundler *diag.Bundler
	if *bundleDir != "" {
		ring := diag.NewLogRing(512)
		slog.SetDefault(slog.New(ring.Tee(logger.Handler())))
		bundler = &diag.Bundler{Dir: *bundleDir, Tool: "tsbench", Registry: reg, LogRing: ring}
		if tracer != nil {
			bundler.Sections = []diag.Section{
				{Name: "trace.json", Write: func(w io.Writer) error { return obs.WriteChromeTrace(w, tracer) }},
			}
		}
		reg.Register(bundler)
		defer diag.ArmSIGQUIT(bundler)()
	}
	if *obsAddr != "" {
		srv, addr, err := obs.Serve(*obsAddr, reg, diag.Endpoints(bundler)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability endpoint on http://%s/\n", addr)
		// Shut the listener down on exit or SIGTERM so in-flight scrapes
		// complete instead of hitting a reset connection.
		defer serve.ShutdownOnSignal(srv, 2*time.Second)()
	}
	defer func() {
		if *traceOut == "" {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteChromeTrace(f, tracer); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote Chrome trace to %s (%d spans)\n", *traceOut, tracer.SpansRecorded())
	}()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	dir := *workdir
	if dir == "" {
		d, err := os.MkdirTemp("", "tsbench")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	// Label compute goroutines for pprof only when a live profile consumer
	// exists (the labels allocate, so they are opt-in).
	cfg := bsp.Config{CoresPerHost: *cores, ProfileLabels: *obsAddr != ""}
	ks := []int{3, 6, 9}

	fmt.Printf("tsbench: scale=%s (road %dx%d, small-world n=%d, %d timesteps), %d cores/host\n\n",
		sc.Name, sc.RoadRows, sc.RoadCols, sc.SWN, sc.Timesteps, *cores)

	start := time.Now()
	road, sw, err := experiments.BuildDatasets(sc)
	if err != nil {
		log.Fatal(err)
	}
	datasets := []*experiments.Dataset{road, sw}
	fmt.Printf("datasets generated in %v\n\n", time.Since(start).Round(time.Millisecond))

	wanted := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return wanted["all"] || wanted[name] }
	ran := false
	report := map[string]any{}

	if want("datasets") {
		ran = true
		rows := experiments.DatasetTable(road, sw)
		report["datasets"] = rows
		experiments.RenderDatasetTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("edgecut") {
		ran = true
		rows, err := experiments.EdgeCutTable(datasets, ks, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["edgecut"] = rows
		experiments.RenderEdgeCutTable(os.Stdout, rows, ks)
		fmt.Println()
	}
	if want("scalability") {
		ran = true
		cells, err := experiments.Scalability(datasets, ks, cfg, *seed, *repeats)
		if err != nil {
			log.Fatal(err)
		}
		report["scalability"] = cells
		experiments.RenderScalability(os.Stdout, cells, ks)
		fmt.Println()
	}
	if want("baseline") {
		ran = true
		rows, err := experiments.Baseline(datasets, 6, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["baseline"] = rows
		experiments.RenderBaseline(os.Stdout, rows)
		fmt.Println()
	}
	if want("timesteps") {
		ran = true
		series, err := experiments.RunTimestepSeries(road, experiments.AlgoTDSP, ks, dir, 10, 5, *gcEvery, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["timesteps-tdsp-road"] = series
		experiments.RenderTimestepSeries(os.Stdout, series)
		fmt.Println()
		series, err = experiments.RunTimestepSeries(sw, experiments.AlgoMeme, ks, dir, 10, 5, *gcEvery, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["timesteps-meme-smallworld"] = series
		experiments.RenderTimestepSeries(os.Stdout, series)
		fmt.Println()
	}
	if want("progress") {
		ran = true
		ps, _, err := experiments.RunProgress(road, experiments.AlgoTDSP, 6, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["progress-tdsp-road"] = ps
		experiments.RenderProgress(os.Stdout, ps)
		fmt.Println()
		ps, _, err = experiments.RunProgress(sw, experiments.AlgoMeme, 6, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["progress-meme-smallworld"] = ps
		experiments.RenderProgress(os.Stdout, ps)
		fmt.Println()
	}
	if want("utilization") {
		ran = true
		ur, err := experiments.RunUtilization(road, experiments.AlgoTDSP, 6, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["utilization-tdsp-road"] = ur
		experiments.RenderUtilization(os.Stdout, ur)
		fmt.Println()
		ur, err = experiments.RunUtilization(sw, experiments.AlgoMeme, 6, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["utilization-meme-smallworld"] = ur
		experiments.RenderUtilization(os.Stdout, ur)
		fmt.Println()
	}
	if want("distributed") {
		ran = true
		res, err := experiments.DistributedSmoke(road, *nodesN, 6, cfg, *seed,
			experiments.DistributedSmokeOptions{
				OnNode: func(n *cluster.Node) { reg.Register(n) },
				Trace:  *mergedOut != "",
			})
		if err != nil {
			log.Fatal(err)
		}
		report["distributed"] = res.Rows
		experiments.RenderDistributedSmoke(os.Stdout, res.Rows)
		if *mergedOut != "" {
			if err := res.Merged.Validate(); err != nil {
				log.Fatalf("merged trace failed validation: %v", err)
			}
			f, err := os.Create(*mergedOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.Merged.WriteChromeTrace(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			reg.Register(obs.ShardCollector{Shards: res.Shards})
			fmt.Printf("wrote merged Chrome trace (%d ranks, %d spans) to %s\n",
				len(res.Merged.Ranks), len(res.Merged.Spans), *mergedOut)
			fmt.Println(res.Skew.String())
		}
		fmt.Println()
	}
	if want("ablation-partition") {
		ran = true
		rows, err := experiments.PartitionerAblation(road, 6, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["ablation-partition"] = rows
		experiments.RenderPartitionerAblation(os.Stdout, rows)
		fmt.Println()
	}
	if want("ablation-temporal") {
		ran = true
		rows, err := experiments.TemporalParallelismAblation(sw, 6, []int{1, 2, 4, 8}, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["ablation-temporal"] = rows
		experiments.RenderTemporalParallelism(os.Stdout, rows)
		fmt.Println()
	}
	if want("ablation-pagerank") {
		ran = true
		rows, err := experiments.PageRankModelAblation(sw, 6, 20, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["ablation-pagerank"] = rows
		experiments.RenderPageRankModel(os.Stdout, rows)
		fmt.Println()
	}
	if want("ablation-compress") {
		ran = true
		rows, err := experiments.CompressionAblation(sw, 6, dir, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["ablation-compress"] = rows
		experiments.RenderCompressionAblation(os.Stdout, rows)
		fmt.Println()
	}
	if want("elastic") {
		ran = true
		var rows []*experiments.ElasticHeadroomRow
		for _, spec := range []struct {
			ds   *experiments.Dataset
			algo string
		}{{road, experiments.AlgoTDSP}, {sw, experiments.AlgoMeme}} {
			r, err := experiments.ElasticHeadroom(spec.ds, spec.algo, 6, cfg, *seed)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, r)
		}
		report["elastic"] = rows
		experiments.RenderElasticHeadroom(os.Stdout, rows)
		fmt.Println()
	}
	if want("prefetch") {
		ran = true
		rows, err := experiments.PrefetchAblation(road, experiments.AlgoTDSP, 6, []int{1, 2, 4}, dir, 10, 5, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["prefetch"] = rows
		experiments.RenderPrefetch(os.Stdout, rows)
		fmt.Println()
	}
	if want("chaos") {
		ran = true
		rows, err := experiments.ChaosTable(road, *nodesN, 6, cfg, *seed,
			[]float64{0, 0.005, 0.02, 0.05})
		if err != nil {
			log.Fatal(err)
		}
		report["chaos"] = rows
		experiments.RenderChaosTable(os.Stdout, *nodesN, rows)
		fmt.Println()
	}
	if want("ablation-packing") {
		ran = true
		rows, err := experiments.PackingAblation(road, 6, []int{1, 5, 10, 25}, dir, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["ablation-packing"] = rows
		experiments.RenderPackingAblation(os.Stdout, rows)
		fmt.Println()
	}
	if want("incremental") {
		ran = true
		res, err := experiments.IncrementalAblation(road,
			[]float64{0.01, 0.1, 0.5, 1}, 8, dir, 10, 5, 10, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["incremental"] = res
		experiments.RenderIncremental(os.Stdout, res)
		fmt.Println()
	}
	if want("serve") {
		ran = true
		rows, err := experiments.ServeBench(experiments.ServeConcurrencies, 256, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["serve"] = rows
		experiments.RenderServeBench(os.Stdout, rows)
		fmt.Println()
	}
	if want("obslive") {
		ran = true
		rows, err := experiments.ObsLiveAblation(experiments.ServeConcurrencies, 256, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["obslive"] = rows
		experiments.RenderObsLive(os.Stdout, rows)
		fmt.Println()
	}
	if want("ingest") {
		ran = true
		rows, err := experiments.IngestBench(experiments.IngestConcurrencies, 64, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["ingest"] = rows
		experiments.RenderIngestBench(os.Stdout, rows)
		fmt.Println()
	}
	if want("shard") {
		ran = true
		rows, err := experiments.ShardBench(256, 64, cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		report["shard"] = rows
		experiments.RenderShardBench(os.Stdout, rows)
		fmt.Println()
	}

	if !ran {
		log.Fatalf("unknown -exp %q; options: all %s", *exp, strings.Join(allExps, " "))
	}
	if *jsonOut != "" {
		// Versioned envelope so perf-trajectory tooling can diff runs across
		// commits: the schema number gates parsing, the git SHA / GOMAXPROCS /
		// timestamp identify the run, and experiment payloads live under
		// "results" keyed by experiment name.
		envelope := map[string]any{
			"schema":     benchSchema,
			"git_sha":    gitSHA(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"timestamp":  time.Now().UTC().Format(time.RFC3339),
			"scale":      sc,
			"cores":      *cores,
			"seed":       *seed,
			"results":    report,
		}
		data, err := json.MarshalIndent(envelope, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote JSON results to %s\n", *jsonOut)
	}
	fmt.Printf("total %v\n", time.Since(start).Round(time.Millisecond))
}
