// Command tsdiag opens a diagnostic bundle (captured by a daemon's
// anomaly detectors, a SIGQUIT, or POST /debug/bundle) offline and prints
// a triage summary: what tripped, the hottest CPU frames during the
// capture window, the slowest retained queries, and each detector's value
// against its rolling baseline. It needs no live process and no graph
// dataset — just the tar.gz.
//
// Usage:
//
//	tsdiag bundle.tar.gz            triage summary (human)
//	tsdiag -json bundle.tar.gz      the same, as JSON
//	tsdiag -list dir/               list bundles in a retention directory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tsgraph/internal/obs"
	"tsgraph/internal/obs/diag"
)

func main() {
	log.SetFlags(0)
	var (
		asJSON  = flag.Bool("json", false, "emit the triage summary as JSON")
		list    = flag.Bool("list", false, "treat the argument as a bundle directory and list its bundles")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tsdiag [-json] bundle.tar.gz\n       tsdiag -list dir\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println("tsdiag", obs.ReadBuildInfo())
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	arg := flag.Arg(0)

	if *list {
		b := &diag.Bundler{Dir: arg}
		bundles, err := b.List()
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if bundles == nil {
				bundles = []diag.BundleInfo{}
			}
			if err := enc.Encode(bundles); err != nil {
				log.Fatal(err)
			}
			return
		}
		if len(bundles) == 0 {
			fmt.Printf("no bundles in %s\n", arg)
			return
		}
		for _, info := range bundles {
			fmt.Printf("%s  %8d bytes  %s\n", info.MTime.Format("2006-01-02 15:04:05"), info.Bytes, filepath.Join(arg, info.Name))
		}
		return
	}

	t, err := diag.Summarize(arg)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t); err != nil {
			log.Fatal(err)
		}
		return
	}
	t.Render(os.Stdout)
}
