// Package tsgraph is a distributed programming framework for time-series
// graphs — graphs whose topology changes slowly but whose vertex and edge
// attribute values change at every timestep. It is a from-scratch Go
// implementation of the system described in "Distributed Programming over
// Time-series Graphs" (Simmhan et al., IPPS 2015): the time-series graph
// data model, the Temporally Iterative BSP (TI-BSP) programming abstraction
// with its three design patterns, the GoFFish-style subgraph-centric BSP
// runtime, the GoFS slice-file storage layer, a METIS-style multilevel
// partitioner, and the paper's three algorithms (Time-Dependent Shortest
// Path, Meme Tracking, Hashtag Aggregation).
//
// # Data model
//
// A time-series graph collection Γ = ⟨Ĝ, G, t0, δ⟩ is a Template (the time
// invariant topology plus attribute schemas) and an ordered series of
// Instances holding the attribute values at t0, t0+δ, t0+2δ, ….
// Build templates with NewBuilder, attach instances via NewCollection /
// NewInstance, or generate synthetic datasets with the gen helpers
// (RoadNetwork, SmallWorld, RandomLatencies, SIRTweets).
//
// # Programming model
//
// Applications implement Program: a Compute method invoked per subgraph,
// per timestep, per superstep, exactly as in §II-D of the paper:
//
//	Compute(ctx, sg, timestep, superstep, msgs)
//	EndOfTimestep(ctx, sg, timestep)          // optional
//	Merge(ctx, sg, superstep, msgs)           // eventually dependent only
//
// The Context provides the paper's messaging primitives: SendTo (within a
// BSP), SendToNextTimestep / SendToSubgraphInNextTimestep (along temporal
// edges), SendMessageToMerge, VoteToHalt and VoteToHaltTimestep. Run a
// program with Run over a Job that selects one of the three design
// patterns: SequentiallyDependent, Independent or EventuallyDependent.
//
// # Quick start
//
// See examples/quickstart for a complete program; the short version:
//
//	tmpl := ...                                  // build or generate a Template
//	coll := ...                                  // its instances
//	assign, _ := tsgraph.PartitionMultilevel(tmpl, 4, 0)
//	parts, _ := tsgraph.BuildSubgraphs(tmpl, assign)
//	res, _ := tsgraph.Run(&tsgraph.Job{
//	    Template: tmpl, Parts: parts,
//	    Source:  tsgraph.MemorySource{C: coll},
//	    Program: myProgram, Pattern: tsgraph.SequentiallyDependent,
//	})
package tsgraph

import (
	"io"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
	"tsgraph/internal/vertex"
)

// Data model types.
type (
	// Template is the time-invariant topology and attribute schemas.
	Template = graph.Template
	// Builder incrementally assembles a Template.
	Builder = graph.Builder
	// Schema is an ordered set of named, typed attributes.
	Schema = graph.Schema
	// AttrType enumerates attribute value types.
	AttrType = graph.AttrType
	// VertexID is an application-assigned vertex identifier.
	VertexID = graph.VertexID
	// EdgeID is an application-assigned edge identifier.
	EdgeID = graph.EdgeID
	// Instance is one timestamped snapshot of attribute values.
	Instance = graph.Instance
	// Collection is a time-series graph Γ = ⟨Ĝ, G, t0, δ⟩.
	Collection = graph.Collection
	// Stats summarizes a template's structure.
	Stats = graph.Stats
)

// Attribute type constants.
const (
	TInt        = graph.TInt
	TFloat      = graph.TFloat
	TString     = graph.TString
	TStringList = graph.TStringList
	TBool       = graph.TBool
)

// NewBuilder creates a template builder; nil schemas mean no attributes.
func NewBuilder(name string, vattrs, eattrs *Schema) *Builder {
	return graph.NewBuilder(name, vattrs, eattrs)
}

// NewSchema builds an attribute schema from parallel name/type lists.
func NewSchema(names []string, types []AttrType) (*Schema, error) {
	return graph.NewSchema(names, types)
}

// NewCollection creates an empty time-series collection over a template.
func NewCollection(t *Template, t0, delta int64) *Collection {
	return graph.NewCollection(t, t0, delta)
}

// NewInstance allocates a zeroed instance matching the template's schemas.
func NewInstance(t *Template, timestep int, time int64) *Instance {
	return graph.NewInstance(t, timestep, time)
}

// ComputeStats derives structural statistics (including a double-sweep
// diameter estimate) for a template.
func ComputeStats(t *Template, sweeps int) Stats { return graph.ComputeStats(t, sweeps) }

// Partitioning.
type (
	// Assignment maps each vertex to one of K partitions (hosts).
	Assignment = partition.Assignment
	// Partitioner is a vertex-partitioning strategy.
	Partitioner = partition.Partitioner
)

// PartitionMultilevel partitions a template over k hosts with the
// METIS-style multilevel k-way partitioner (the paper's configuration:
// balanced vertex counts within a 1.03 load factor, minimized edge cut).
func PartitionMultilevel(t *Template, k int, seed int64) (*Assignment, error) {
	return partition.Multilevel{Seed: seed}.Partition(t, k)
}

// PartitionHash partitions by vertex index modulo k (ablation baseline).
func PartitionHash(t *Template, k int) (*Assignment, error) {
	return partition.Hash{}.Partition(t, k)
}

// Subgraph discovery.
type (
	// SubgraphID identifies a subgraph as (partition, index).
	SubgraphID = subgraph.ID
	// Subgraph is a maximal weakly connected component within a partition
	// — the unit Compute runs on.
	Subgraph = subgraph.Subgraph
	// PartitionData is one partition's local topology view.
	PartitionData = subgraph.PartitionData
)

// BuildSubgraphs derives every partition's local view and subgraphs from a
// template and an assignment, resolving remote edges.
func BuildSubgraphs(t *Template, a *Assignment) ([]*PartitionData, error) {
	return subgraph.Build(t, a)
}

// TI-BSP programming model.
type (
	// Program is TI-BSP user logic (Compute per subgraph/timestep/superstep).
	Program = core.Program
	// Merger adds the Merge phase of the eventually dependent pattern.
	Merger = core.Merger
	// Context is passed to Compute.
	Context = core.Context
	// EndContext is passed to EndOfTimestep.
	EndContext = core.EndContext
	// MergeContext is passed to Merge.
	MergeContext = core.MergeContext
	// Pattern selects a design pattern.
	Pattern = core.Pattern
	// Job describes a TI-BSP run.
	Job = core.Job
	// Result carries a completed run's outputs.
	Result = core.Result
	// Output is one emitted application record.
	Output = core.Output
	// Message is a unit of inter-subgraph communication.
	Message = bsp.Message
	// EngineConfig tunes the BSP engine (cores per host, superstep bound,
	// modeled superstep latency).
	EngineConfig = bsp.Config
	// InstanceSource supplies instances by timestep (in-memory or GoFS).
	InstanceSource = core.InstanceSource
	// MemorySource adapts an in-memory Collection to InstanceSource.
	MemorySource = core.MemorySource
	// Recorder accumulates per-timestep metrics.
	Recorder = metrics.Recorder
)

// Design patterns (§II-B of the paper).
const (
	SequentiallyDependent = core.SequentiallyDependent
	Independent           = core.Independent
	EventuallyDependent   = core.EventuallyDependent
)

// Run executes a TI-BSP job to completion.
func Run(job *Job) (*Result, error) { return core.Run(job) }

// NewRecorder creates a metrics recorder for k partitions.
func NewRecorder(k int) *Recorder { return metrics.NewRecorder(k) }

// GoFS storage.
type (
	// Store is an opened GoFS dataset.
	Store = gofs.Store
	// Loader incrementally materializes instances from slice files.
	Loader = gofs.Loader
)

// WriteDataset persists a collection as a GoFS dataset with the given
// temporal packing and subgraph binning (0 = the paper's defaults, 10 & 5).
func WriteDataset(dir string, c *Collection, a *Assignment, pack, bin int) error {
	return gofs.WriteDataset(dir, c, a, pack, bin)
}

// OpenDataset opens a GoFS dataset directory.
func OpenDataset(dir string) (*Store, error) { return gofs.Open(dir) }

// NewLoader creates a lazy instance loader over an open store; it satisfies
// InstanceSource.
func NewLoader(s *Store) *Loader { return gofs.NewLoader(s) }

// Synthetic dataset generators (the paper's §IV-A data model).
type (
	// RoadConfig parameterizes RoadNetwork.
	RoadConfig = gen.RoadConfig
	// SmallWorldConfig parameterizes SmallWorld.
	SmallWorldConfig = gen.SmallWorldConfig
	// LatencyConfig parameterizes RandomLatencies.
	LatencyConfig = gen.LatencyConfig
	// SIRConfig parameterizes SIRTweets.
	SIRConfig = gen.SIRConfig
	// SIRResult carries the generated tweets plus ground truth.
	SIRResult = gen.SIRResult
)

// Standard generated attribute names.
const (
	AttrTweets  = gen.AttrTweets
	AttrLatency = gen.AttrLatency
	AttrLoad    = gen.AttrLoad
)

// RoadNetwork generates a large-diameter, small-degree road-like template.
func RoadNetwork(cfg RoadConfig) *Template { return gen.RoadNetwork(cfg) }

// SmallWorld generates a power-law, tiny-diameter template.
func SmallWorld(cfg SmallWorldConfig) *Template { return gen.SmallWorld(cfg) }

// RandomLatencies builds instances with uncorrelated random edge latencies.
func RandomLatencies(t *Template, cfg LatencyConfig) (*Collection, error) {
	return gen.RandomLatencies(t, cfg)
}

// SIRTweets builds instances whose vertex tweets carry memes propagated by
// an SIR epidemic process.
func SIRTweets(t *Template, cfg SIRConfig) (*SIRResult, error) {
	return gen.SIRTweets(t, cfg)
}

// Algorithms (§III of the paper).
type (
	// TDSPResult is one finalized time-dependent shortest path.
	TDSPResult = algorithms.TDSPResult
	// MemeResult is one first-colored vertex of a tracked meme.
	MemeResult = algorithms.MemeResult
	// HashtagStats is the merged hashtag aggregation output.
	HashtagStats = algorithms.HashtagStats
)

// TDSP computes time-dependent shortest paths from src over every instance
// (stopping early once all vertices are finalized) and returns
// template-indexed earliest arrival times (+Inf when unreached).
func TDSP(t *Template, parts []*PartitionData, src int, source InstanceSource, delta float64, weightAttr string, cfg EngineConfig, rec *Recorder) ([]float64, *Result, error) {
	return algorithms.RunTDSP(t, parts, src, source, delta, weightAttr, cfg, rec)
}

// TrackMeme runs the sequentially dependent meme-tracking temporal BFS and
// returns, per vertex, the first timestep it was colored (-1 if never).
func TrackMeme(t *Template, parts []*PartitionData, meme, tweetsAttr string, source InstanceSource, cfg EngineConfig, rec *Recorder) ([]int32, *Result, error) {
	return algorithms.RunMeme(t, parts, meme, tweetsAttr, source, cfg, rec)
}

// AggregateHashtag runs the eventually dependent hashtag aggregation and
// returns per-timestep counts plus summary statistics.
func AggregateHashtag(t *Template, parts []*PartitionData, hashtag, tweetsAttr string, source InstanceSource, cfg EngineConfig, rec *Recorder, temporalParallelism int) (*HashtagStats, *Result, error) {
	return algorithms.RunHashtag(t, parts, hashtag, tweetsAttr, source, cfg, rec, temporalParallelism)
}

// SSSP runs single-instance subgraph-centric single-source shortest path
// (empty weightAttr = unweighted BFS).
func SSSP(t *Template, parts []*PartitionData, src int, source InstanceSource, timestep int, weightAttr string, cfg EngineConfig) ([]float64, *Result, error) {
	return algorithms.RunSSSP(t, parts, src, source, timestep, weightAttr, cfg)
}

// ConnectedComponents labels weakly connected components subgraph-
// centrically.
func ConnectedComponents(t *Template, parts []*PartitionData, source InstanceSource, cfg EngineConfig) ([]int64, *Result, error) {
	return algorithms.RunCC(t, parts, source, cfg)
}

// Vertex-centric baseline (the Giraph-like engine of §IV-C).
type (
	// VertexConfig tunes the vertex-centric engine.
	VertexConfig = vertex.Config
	// VertexResult summarizes a vertex-centric run.
	VertexResult = vertex.Result
)

// VertexSSSP runs Pregel-style SSSP (nil weights = BFS) as the comparison
// baseline.
func VertexSSSP(t *Template, a *Assignment, cfg VertexConfig, src int, weights []float64) ([]float64, *VertexResult, error) {
	return vertex.SSSP(t, a, cfg, src, weights)
}

// VertexValue pairs a vertex with an attribute value for ranking.
type VertexValue = algorithms.VertexValue

// TopN ranks vertices by a float vertex attribute independently per
// timestep (the paper's independent design pattern) and returns the global
// top-N per timestep; temporalParallelism > 1 processes instances
// concurrently.
func TopN(t *Template, parts []*PartitionData, attr string, n int, source InstanceSource, cfg EngineConfig, rec *Recorder, temporalParallelism int) ([][]VertexValue, *Result, error) {
	return algorithms.RunTopN(t, parts, attr, n, source, cfg, rec, temporalParallelism)
}

// RandomLoads fills the vertex "load" attribute of a collection with
// uniform random values (for ranking/aggregation workloads).
func RandomLoads(c *Collection, seed int64, min, max float64) error {
	return gen.RandomLoads(c, seed, min, max)
}

// PageRank runs subgraph-centric PageRank (fixed iterations, damping d)
// over the template and returns the template-indexed rank vector.
func PageRank(t *Template, parts []*PartitionData, source InstanceSource, damping float64, iterations int, cfg EngineConfig) ([]float64, *Result, error) {
	return algorithms.RunPageRank(t, parts, source, damping, iterations, cfg)
}

// EdgeListOptions controls SNAP edge-list parsing.
type EdgeListOptions = graph.EdgeListOptions

// ReadEdgeList parses a SNAP-style "src dst" edge list (e.g. roadNet-CA,
// wiki-Talk) into a Template.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*Template, error) {
	return graph.ReadEdgeList(r, opts)
}

// WriteEdgeList emits a template in SNAP edge-list form.
func WriteEdgeList(w io.Writer, t *Template) error { return graph.WriteEdgeList(w, t) }

// TDSPProgram is the Time-Dependent Shortest Path program (paper Alg 2);
// construct with NewTDSPProgram to set options (e.g. ExistsAttr for
// isExists-aware traversal) and run it with Run.
type TDSPProgram = algorithms.TDSPProgram

// NewTDSPProgram builds a TDSP program over partitioned data; src is a
// template vertex index, delta the instance period δ.
func NewTDSPProgram(parts []*PartitionData, src int, delta float64, weightAttr string) *TDSPProgram {
	return algorithms.NewTDSP(parts, src, delta, weightAttr)
}

// StoreOptions configures GoFS dataset storage (packing, binning,
// compression).
type StoreOptions = gofs.Options

// WriteDatasetOptions is WriteDataset with explicit storage options.
func WriteDatasetOptions(dir string, c *Collection, a *Assignment, o StoreOptions) error {
	return gofs.WriteDatasetOptions(dir, c, a, o)
}
