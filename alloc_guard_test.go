// The allocation guard counts exact heap allocations, which the race
// detector's instrumentation inflates; CI runs it in a separate non-race
// invocation.
//go:build !race

package tsgraph_test

import (
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/gen"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// TestAllocGuard pins the superstep hot path's allocation budget: one full
// 64-superstep Run on the BenchmarkSuperstepHotPath workload must stay
// within the budget established when the hot path went zero-allocation
// (31 allocs per Run — all in per-Run setup, none per superstep). Tracing
// is left disabled, as in production defaults; the instrumentation sites
// must cost nothing when off.
func TestAllocGuard(t *testing.T) {
	const (
		supersteps = 64
		maxAllocs  = 31
	)
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, Seed: 42})
	a, err := (partition.Multilevel{Seed: 2}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	e := bsp.NewEngine(parts, bsp.Config{CoresPerHost: 2})
	prog := bsp.ComputeFunc(func(ctx *bsp.Context, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
		if superstep < supersteps-1 {
			ctx.SendToAllNeighbors(superstep)
			return
		}
		ctx.VoteToHalt()
	})
	// Warm up once so lazily-grown scratch buffers reach steady state.
	if _, err := e.Run(prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := e.Run(prog, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Supersteps != supersteps {
			t.Fatalf("supersteps = %d, want %d", res.Supersteps, supersteps)
		}
	})
	if allocs > maxAllocs {
		t.Fatalf("superstep hot path allocated %.1f times per Run, budget is %d", allocs, maxAllocs)
	}
}
