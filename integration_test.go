package tsgraph_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTools compiles the four CLIs once per test binary.
var (
	toolsOnce sync.Once
	toolsDir  string
	toolsErr  error
)

func tools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration tests skipped in -short mode")
	}
	toolsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tsgraph-tools")
		if err != nil {
			toolsErr = err
			return
		}
		toolsDir = dir
		for _, tool := range []string{"tsgen", "tspart", "tsrun", "tsbench"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				toolsErr = err
				_ = out
				return
			}
		}
	})
	if toolsErr != nil {
		t.Fatalf("building tools: %v", toolsErr)
	}
	return toolsDir
}

func runTool(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	bin := tools(t)
	ds := filepath.Join(t.TempDir(), "ds")

	out := runTool(t, bin, "tsgen",
		"-out", ds, "-graph", "road", "-rows", "16", "-cols", "16",
		"-steps", "8", "-data", "both", "-hit", "0.3", "-parts", "3", "-compress")
	if !strings.Contains(out, "wrote 8 instances") {
		t.Fatalf("tsgen output: %s", out)
	}

	out = runTool(t, bin, "tspart", "-in", ds, "-sweep", "2,3")
	if !strings.Contains(out, "multilevel") || !strings.Contains(out, "stored assignment") {
		t.Fatalf("tspart output: %s", out)
	}

	out = runTool(t, bin, "tsrun", "-in", ds, "-algo", "tdsp", "-source", "0")
	if !strings.Contains(out, "tdsp: reached") {
		t.Fatalf("tsrun tdsp output: %s", out)
	}

	out = runTool(t, bin, "tsrun", "-in", ds, "-algo", "hashtag", "-meme", "#meme")
	if !strings.Contains(out, "hashtag #meme") {
		t.Fatalf("tsrun hashtag output: %s", out)
	}

	out = runTool(t, bin, "tsrun", "-in", ds, "-algo", "pagerank")
	if !strings.Contains(out, "pagerank: top vertex") {
		t.Fatalf("tsrun pagerank output: %s", out)
	}

	out = runTool(t, bin, "tsrun", "-in", ds, "-algo", "cc")
	if !strings.Contains(out, "1 weakly connected components") {
		t.Fatalf("tsrun cc output: %s", out)
	}
}

func TestCLIBenchDatasets(t *testing.T) {
	bin := tools(t)
	out := runTool(t, bin, "tsbench", "-scale", "small", "-exp", "datasets")
	if !strings.Contains(out, "Dataset table") || !strings.Contains(out, "ROAD") {
		t.Fatalf("tsbench output: %s", out)
	}
}

func TestCLIDistributedTDSP(t *testing.T) {
	bin := tools(t)
	ds := filepath.Join(t.TempDir(), "ds")
	runTool(t, bin, "tsgen",
		"-out", ds, "-graph", "road", "-rows", "12", "-cols", "12",
		"-steps", "6", "-data", "road", "-parts", "2")

	addrs := "127.0.0.1:7781,127.0.0.1:7782"
	done := make(chan string, 1)
	go func() {
		cmd := exec.Command(filepath.Join(bin, "tsrun"),
			"-in", ds, "-algo", "tdsp", "-cluster-rank", "1", "-cluster-addrs", addrs)
		out, _ := cmd.CombinedOutput()
		done <- string(out)
	}()
	out0 := runTool(t, bin, "tsrun",
		"-in", ds, "-algo", "tdsp", "-cluster-rank", "0", "-cluster-addrs", addrs)
	out1 := <-done
	if !strings.Contains(out0, "rank 0: tdsp finalized") {
		t.Fatalf("rank 0 output: %s", out0)
	}
	if !strings.Contains(out1, "rank 1: tdsp finalized") {
		t.Fatalf("rank 1 output: %s", out1)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := tools(t)
	cmd := exec.Command(filepath.Join(bin, "tsrun"), "-in", filepath.Join(t.TempDir(), "missing"))
	if err := cmd.Run(); err == nil {
		t.Error("tsrun on a missing dataset should fail")
	}
	cmd = exec.Command(filepath.Join(bin, "tsgen"))
	if err := cmd.Run(); err == nil {
		t.Error("tsgen without -out should fail")
	}
}
