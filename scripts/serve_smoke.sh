#!/usr/bin/env bash
# serve_smoke.sh — end-to-end tsserve smoke test.
#
# Boots the serving daemon on a generated dataset, fires 200 concurrent
# mixed queries (TDSP / top-N / meme) at it, and checks the serving
# contract end to end:
#
#   1. every response is 200 or 429, and every 429 carries Retry-After;
#   2. each query kind succeeds at least once and accepted-query p99 stays
#      under a bound;
#   3. /metrics exposes the serving counters, latency histograms, runtime
#      telemetry, and build info, and /debug/flight answers with recorder
#      counters;
#   4. POST /debug/bundle captures a diagnostic bundle, the bundle is
#      listed and downloaded over HTTP, and tsdiag triages it offline;
#   5. SIGTERM drains cleanly: the process logs the drain and exits 0.
#
# Environment: SMOKE_DIR (workdir, default mktemp), SERVELOAD_P99 (latency
# bound, default 10s — generous because CI machines are noisy; the real
# latency expectation lives in tsbench -exp serve).
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

WORK="${SMOKE_DIR:-$(mktemp -d /tmp/tsgraph-serve-smoke.XXXXXX)}"
P99="${SERVELOAD_P99:-10s}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/tsserve" ./cmd/tsserve
go build -o "$WORK/tsdiag" ./cmd/tsdiag
go build -o "$WORK/serveload" ./scripts/serveload
go run ./cmd/tsgen -out "$WORK/ds" -rows 24 -cols 24 -steps 12 -data both \
    -pack 4 -parts 4 -seed 7 >/dev/null

echo "== boot tsserve"
"$WORK/tsserve" -in "$WORK/ds" -addr 127.0.0.1:0 -v \
    -bundle-dir "$WORK/bundles" >"$WORK/tsserve.out" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

ADDR="$(wait_listen "$WORK/tsserve.out" "$SRV")"
wait_healthz "$ADDR"
echo "tsserve at $ADDR"

echo "== 200 concurrent mixed queries (only 200/429 allowed, p99 <= $P99)"
"$WORK/serveload" -addr "http://$ADDR" -n 200 -c 200 -p99 "$P99"

echo "== /metrics carries the serving counters"
METRICS="$WORK/metrics.txt"
fetch_metrics "$ADDR" "$METRICS"
require_metric "$METRICS" tsserve_queries_answered_total
require_metric "$METRICS" tsserve_latency_seconds_bucket
require_metric "$METRICS" tsgraph_build_info

echo "== /debug/flight answers with recorder counters"
FLIGHT="$WORK/flight.json"
curl -sf "http://$ADDR/debug/flight" -o "$FLIGHT" \
    || { echo "FAIL: /debug/flight fetch failed (curl exit $?)"; exit 1; }
grep -q '"queries_total"' "$FLIGHT" \
    || { echo "FAIL: /debug/flight lacks queries_total"; cat "$FLIGHT"; exit 1; }

echo "== runtime telemetry is on the scrape"
require_metric "$METRICS" tsgraph_go_goroutines
require_metric "$METRICS" tsgraph_go_gc_pause_seconds_bucket
require_metric "$METRICS" tsgofs_bytes_read_total

echo "== POST /debug/bundle captures, lists, downloads, and triages"
CAPTURE="$WORK/capture.json"
curl -sf -X POST "http://$ADDR/debug/bundle" -o "$CAPTURE" \
    || { echo "FAIL: bundle capture failed (curl exit $?)"; cat "$CAPTURE" 2>/dev/null; exit 1; }
BUNDLE_NAME="$(python3 -c 'import json,os,sys; print(os.path.basename(json.load(open(sys.argv[1]))["bundle"]))' "$CAPTURE")"
[ -n "$BUNDLE_NAME" ] || { echo "FAIL: capture response named no bundle"; cat "$CAPTURE"; exit 1; }
curl -sf "http://$ADDR/debug/bundle" -o "$WORK/bundle-list.json" \
    || { echo "FAIL: bundle list fetch failed"; exit 1; }
python3 -c 'import json,sys; bs=json.load(open(sys.argv[1]))["bundles"]; assert len(bs)==1, bs' "$WORK/bundle-list.json" \
    || { echo "FAIL: bundle list does not show the capture"; cat "$WORK/bundle-list.json"; exit 1; }
curl -sf "http://$ADDR/debug/bundle?name=$BUNDLE_NAME" -o "$WORK/$BUNDLE_NAME" \
    || { echo "FAIL: bundle download failed"; exit 1; }
TRIAGE="$WORK/triage.txt"
"$WORK/tsdiag" "$WORK/$BUNDLE_NAME" >"$TRIAGE" \
    || { echo "FAIL: tsdiag could not triage the bundle"; cat "$TRIAGE"; exit 1; }
grep -q 'trigger: manual' "$TRIAGE" \
    || { echo "FAIL: triage lacks the manual trigger"; cat "$TRIAGE"; exit 1; }
grep -q 'tsserve' "$TRIAGE" \
    || { echo "FAIL: triage lacks the capturing tool"; cat "$TRIAGE"; exit 1; }
echo "   triaged $BUNDLE_NAME"

echo "== SIGTERM drains cleanly"
kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "FAIL: tsserve exited nonzero after SIGTERM"
    cat "$WORK/tsserve.out"
    exit 1
fi
trap - EXIT
grep -q "drained, exiting" "$WORK/tsserve.out" \
    || { echo "FAIL: drain never logged"; cat "$WORK/tsserve.out"; exit 1; }

echo "PASS: serve smoke"
