#!/usr/bin/env bash
# chaos_smoke.sh — 4-rank distributed kill/resume smoke test.
#
# Exercises the full fault-tolerance loop end to end with real processes:
#
#   1. reference: a clean 4-rank tsrun TDSP mesh over loopback TCP;
#   2. kill:      the same mesh with timestep-boundary checkpointing on,
#                 where rank 2 dies on an injected gofs.load fault (the
#                 timestep-8 pack load) and its fail-fast peers die with it;
#   3. resume:    a fresh mesh resumes from the agreed checkpoint and must
#                 reproduce the reference results exactly.
#
# Environment: SMOKE_DIR (workdir, default mktemp), SMOKE_PORT (base port,
# default 7831; three disjoint port blocks are used so phases never collide
# with lingering TIME_WAIT sockets).
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${SMOKE_DIR:-$(mktemp -d /tmp/tsgraph-chaos-smoke.XXXXXX)}"
PORT="${SMOKE_PORT:-7831}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/tsrun" ./cmd/tsrun
go run ./cmd/tsgen -out "$WORK/ds" -rows 16 -cols 16 -steps 12 -pack 4 -parts 4 -seed 7 >/dev/null

addrs() {
    echo "127.0.0.1:$1,127.0.0.1:$(($1 + 1)),127.0.0.1:$(($1 + 2)),127.0.0.1:$(($1 + 3))"
}

echo "== phase 1: clean 4-rank reference run"
A=$(addrs "$PORT")
pids=()
for r in 0 1 2 3; do
    "$WORK/tsrun" -in "$WORK/ds" -algo tdsp -cluster-rank "$r" -cluster-addrs "$A" \
        >"$WORK/ref_$r.out" 2>&1 &
    pids+=($!)
done
for p in "${pids[@]}"; do
    wait "$p" || { echo "FAIL: reference rank exited nonzero"; tail -n 5 "$WORK"/ref_*.out; exit 1; }
done
grep -h "tdsp finalized" "$WORK"/ref_*.out | sort >"$WORK/ref.all"

echo "== phase 2: checkpointed run killed by a chaos gofs.load fault on rank 2"
A=$(addrs $((PORT + 10)))
CK="$WORK/ck"
mkdir -p "$CK"
pids=()
for r in 0 1 2 3; do
    extra=()
    [ "$r" = 2 ] && extra=(-chaos "seed=42,gofs.load=at:2")
    # -bundle-dir: if a rank wedges instead of dying, SIGQUIT captures a
    # diagnostic bundle there; CI uploads $WORK/bundles on failure.
    "$WORK/tsrun" -in "$WORK/ds" -algo tdsp -cluster-rank "$r" -cluster-addrs "$A" \
        -checkpoint "$CK" -bundle-dir "$WORK/bundles" "${extra[@]}" >"$WORK/kill_$r.out" 2>&1 &
    pids+=($!)
done
fails=0
for p in "${pids[@]}"; do
    wait "$p" || fails=$((fails + 1))
done
if [ "$fails" -ne 4 ]; then
    echo "FAIL: want all 4 ranks to die loudly with the injected fault, got $fails nonzero exits"
    tail -n 5 "$WORK"/kill_*.out
    exit 1
fi
for r in 0 1 2 3; do
    ls "$CK"/ckpt_r${r}_* >/dev/null 2>&1 || { echo "FAIL: rank $r left no checkpoint"; ls "$CK"; exit 1; }
done
echo "   all 4 ranks died, every rank checkpointed"

echo "== phase 3: fresh mesh resumes from the agreed checkpoint"
A=$(addrs $((PORT + 20)))
pids=()
for r in 0 1 2 3; do
    "$WORK/tsrun" -in "$WORK/ds" -algo tdsp -cluster-rank "$r" -cluster-addrs "$A" \
        -checkpoint "$CK" -resume -bundle-dir "$WORK/bundles" >"$WORK/res_$r.out" 2>&1 &
    pids+=($!)
done
for p in "${pids[@]}"; do
    wait "$p" || { echo "FAIL: resumed rank exited nonzero"; tail -n 5 "$WORK"/res_*.out; exit 1; }
done
grep -h "tdsp finalized" "$WORK"/res_*.out | sort >"$WORK/res.all"

if ! diff "$WORK/ref.all" "$WORK/res.all"; then
    echo "FAIL: resumed results differ from the clean reference run"
    exit 1
fi
echo "PASS: killed-and-resumed 4-rank run matches the clean run"
