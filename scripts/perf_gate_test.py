#!/usr/bin/env python3
"""Tests for perf_gate.py — run with `python3 scripts/perf_gate_test.py`.

The gate is the only thing standing between a perf regression and a green
build, so its own behavior is pinned here: a real regression fails, noise
under the floor does not, new experiments and metrics are skipped rather
than gated, and a missing baseline is a loud nonzero exit instead of a
silently passing gate.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "perf_gate.py")

# A minimal but realistic schema-3 snapshot: one serve row (QPS higher is
# better, Elapsed lower) and one baseline row (Wall, duration-gated).
SNAPSHOT = {
    "schema": 3,
    "git_sha": "0123456789abcdef",
    "gomaxprocs": 8,
    "timestamp": "2026-08-08T00:00:00Z",
    "results": {
        "serve": [
            {"Concurrency": 16, "MaxBatch": 8, "QPS": 1000.0, "Elapsed": 2_000_000_000},
        ],
        "baseline": [
            {"System": "tsgraph", "Graph": "grid", "Wall": 500_000_000},
        ],
    },
}


def run_gate(base, cand, *extra):
    """Write both snapshots to disk and run the gate; returns (exit, output)."""
    with tempfile.TemporaryDirectory() as d:
        paths = []
        for name, doc in (("base.json", base), ("cand.json", cand)):
            p = os.path.join(d, name)
            if doc is not None:
                with open(p, "w") as f:
                    json.dump(doc, f)
            paths.append(p)
        proc = subprocess.run(
            [sys.executable, GATE, *paths, *extra],
            capture_output=True,
            text=True,
        )
    return proc.returncode, proc.stdout + proc.stderr


class PerfGateTest(unittest.TestCase):
    def test_identical_snapshots_pass(self):
        code, out = run_gate(SNAPSHOT, copy.deepcopy(SNAPSHOT))
        self.assertEqual(code, 0, out)
        self.assertIn("0 regression(s)", out)

    def test_large_regression_fails(self):
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["serve"][0]["QPS"] = 600.0  # 40% throughput loss
        code, out = run_gate(SNAPSHOT, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)
        self.assertIn("QPS", out)

    def test_duration_regression_fails(self):
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["baseline"][0]["Wall"] = 900_000_000  # 500ms -> 900ms
        code, out = run_gate(SNAPSHOT, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("Wall", out)

    def test_small_regression_within_threshold_passes(self):
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["serve"][0]["QPS"] = 900.0  # 10% < 25% threshold
        code, out = run_gate(SNAPSHOT, cand)
        self.assertEqual(code, 0, out)

    def test_noise_floor_ignores_tiny_durations(self):
        # A 2ms baseline wall tripling to 6ms is scheduler jitter, not a
        # regression: below the 5ms floor the cell is informational only.
        base = copy.deepcopy(SNAPSHOT)
        base["results"]["baseline"][0]["Wall"] = 2_000_000
        cand = copy.deepcopy(base)
        cand["results"]["baseline"][0]["Wall"] = 6_000_000
        code, out = run_gate(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("below noise floor", out)

    def test_new_experiment_in_candidate_passes(self):
        # Experiments the baseline predates are skipped, not gated.
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["diagnostics"] = [{"Mode": "armed", "QPS": 1.0}]
        code, out = run_gate(SNAPSHOT, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("only in candidate", out)

    def test_new_metric_in_candidate_passes(self):
        # A metric absent from the baseline row has nothing to compare
        # against and must not crash or fail the gate.
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["serve"][0]["P99"] = 12_000_000
        code, out = run_gate(SNAPSHOT, cand)
        self.assertEqual(code, 0, out)

    def test_missing_baseline_is_nonzero(self):
        code, out = run_gate(None, copy.deepcopy(SNAPSHOT))
        self.assertNotEqual(code, 0, out)
        self.assertIn("perf_gate", out)
        self.assertNotIn("Traceback", out)

    def test_wrong_schema_is_nonzero(self):
        base = copy.deepcopy(SNAPSHOT)
        base["schema"] = 2
        code, out = run_gate(base, copy.deepcopy(SNAPSHOT))
        self.assertNotEqual(code, 0, out)
        self.assertIn("unsupported schema", out)

    def test_threshold_flag(self):
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["serve"][0]["QPS"] = 900.0  # 10% loss
        code, out = run_gate(SNAPSHOT, cand, "--threshold", "0.05")
        self.assertEqual(code, 1, out)


def run_gate_dir(baselines, cand, *extra):
    """Write baseline files into a directory, run the gate with
    --baseline-dir; returns (exit, output)."""
    with tempfile.TemporaryDirectory() as d:
        for name, doc in baselines.items():
            with open(os.path.join(d, name), "w") as f:
                json.dump(doc, f)
        cand_path = os.path.join(d, "cand-under-test.json")
        with open(cand_path, "w") as f:
            json.dump(cand, f)
        proc = subprocess.run(
            [sys.executable, GATE, "--baseline-dir", d, cand_path, *extra],
            capture_output=True,
            text=True,
        )
    return proc.returncode, proc.stdout + proc.stderr


class BaselineDirTest(unittest.TestCase):
    def test_selects_numerically_newest_baseline(self):
        # BENCH_PR10 must beat BENCH_PR9 even though it sorts first
        # lexicographically. PR9 is poisoned so that gating against it
        # would fail: a green gate proves PR10 was chosen.
        pr9 = copy.deepcopy(SNAPSHOT)
        pr9["results"]["serve"][0]["QPS"] = 10_000.0  # candidate would regress 90%
        code, out = run_gate_dir(
            {"BENCH_PR9.json": pr9, "BENCH_PR10.json": copy.deepcopy(SNAPSHOT)},
            copy.deepcopy(SNAPSHOT),
        )
        self.assertEqual(code, 0, out)
        self.assertIn("BENCH_PR10.json", out)

    def test_gates_against_the_selected_baseline(self):
        base = copy.deepcopy(SNAPSHOT)
        cand = copy.deepcopy(SNAPSHOT)
        cand["results"]["serve"][0]["QPS"] = 600.0  # 40% loss
        code, out = run_gate_dir({"BENCH_PR7.json": base}, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("BENCH_PR7.json", out)
        self.assertIn("QPS", out)

    def test_no_parsable_baseline_is_loud(self):
        # Near-miss names must be listed in the error, and the gate must
        # not silently pass.
        code, out = run_gate_dir(
            {"BENCH_PRx.json": copy.deepcopy(SNAPSHOT), "BENCH_latest.json": copy.deepcopy(SNAPSHOT)},
            copy.deepcopy(SNAPSHOT),
        )
        self.assertNotEqual(code, 0, out)
        self.assertIn("no baseline matching", out)
        self.assertIn("BENCH_PRx.json", out)
        self.assertIn("BENCH_latest.json", out)
        self.assertNotIn("Traceback", out)

    def test_empty_dir_is_loud(self):
        code, out = run_gate_dir({}, copy.deepcopy(SNAPSHOT))
        self.assertNotEqual(code, 0, out)
        self.assertIn("no baseline matching", out)
        self.assertNotIn("Traceback", out)

    def test_baseline_dir_rejects_two_positionals(self):
        code, out = run_gate(SNAPSHOT, copy.deepcopy(SNAPSHOT), "--baseline-dir", ".")
        self.assertNotEqual(code, 0, out)
        self.assertIn("exactly one", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
