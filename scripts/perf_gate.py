#!/usr/bin/env python3
"""Perf-regression gate over tsbench -json snapshots.

Compares a candidate benchmark run against a committed baseline (the
BENCH_PR*.json files at the repo root) and fails when any matched metric
regresses by more than the threshold (default 25%).

    perf_gate.py BASELINE.json CANDIDATE.json [--threshold 0.25]
    perf_gate.py --baseline-dir . CANDIDATE.json

With --baseline-dir the baseline is the highest-numbered BENCH_PR<N>.json
in that directory, compared numerically (BENCH_PR10 beats BENCH_PR9,
which a lexicographic glob would get backwards). When nothing in the
directory parses as a baseline, the gate exits nonzero and lists what it
considered — a missing baseline must never pass silently.

Experiments present in only one of the two files are skipped (the baseline
predates newer experiments); within a shared experiment, rows are matched
by their configuration fields, so reordering is harmless. Wall-clock
metrics below the noise floor (default 5 ms) are reported but never fail
the gate: micro-millisecond cells swing far more than 25% run to run.
"""

import argparse
import json
import os
import re
import sys

# Per-experiment comparison plan: which fields identify a row and which
# metrics are gated. Direction "lower" = smaller is better (durations in
# nanoseconds), "higher" = larger is better (throughput).
ROW_EXPERIMENTS = {
    "baseline": {"key": ("System", "Graph"), "metrics": [("Wall", "lower")]},
    "prefetch": {
        "key": ("Algo", "Graph", "K", "Depth"),
        "metrics": [("SimTime", "lower"), ("LoadWait", "lower")],
    },
    "serve": {
        "key": ("Concurrency", "MaxBatch"),
        "metrics": [("QPS", "higher"), ("Elapsed", "lower")],
    },
    "obslive": {
        "key": ("Concurrency", "Live"),
        "metrics": [("QPS", "higher")],
    },
    "shard": {
        "key": ("Ranks", "Replicas"),
        "metrics": [("QPS", "higher"), ("Elapsed", "lower")],
    },
}

# Duration metrics (ns) under this floor in the baseline are too small to
# gate: scheduler jitter alone exceeds the threshold.
DURATION_METRICS = {"Wall", "SimTime", "LoadWait", "Elapsed", "FullSweep", "DeltaSweep"}


def fmt(metric, value):
    if metric in DURATION_METRICS:
        return f"{value / 1e6:.2f}ms"
    return f"{value:.1f}"


class Gate:
    def __init__(self, threshold, noise_floor_ns):
        self.threshold = threshold
        self.noise_floor_ns = noise_floor_ns
        self.checked = 0
        self.skipped = 0
        self.failures = []

    def compare(self, where, metric, direction, base, cand):
        if not isinstance(base, (int, float)) or not isinstance(cand, (int, float)):
            return
        if base <= 0:
            return
        if metric in DURATION_METRICS and base < self.noise_floor_ns:
            self.skipped += 1
            print(f"  skip  {where} {metric}: baseline {fmt(metric, base)} below noise floor")
            return
        if direction == "lower":
            change = (cand - base) / base
        else:
            change = (base - cand) / base
        self.checked += 1
        verdict = "ok   "
        if change > self.threshold:
            verdict = "FAIL "
            self.failures.append(
                f"{where} {metric}: {fmt(metric, base)} -> {fmt(metric, cand)} "
                f"({change:+.1%} worse, threshold {self.threshold:.0%})"
            )
        print(
            f"  {verdict} {where} {metric}: {fmt(metric, base)} -> {fmt(metric, cand)} ({change:+.1%})"
        )


def index_rows(rows, key_fields):
    out = {}
    for row in rows:
        out[tuple(row.get(k) for k in key_fields)] = row
    return out


def gate_rows(gate, name, plan, base_rows, cand_rows):
    base_idx = index_rows(base_rows, plan["key"])
    cand_idx = index_rows(cand_rows, plan["key"])
    for key, base_row in sorted(base_idx.items(), key=repr):
        cand_row = cand_idx.get(key)
        if cand_row is None:
            print(f"  skip  {name}{list(key)}: row absent from candidate")
            gate.skipped += 1
            continue
        where = f"{name}{list(key)}"
        for metric, direction in plan["metrics"]:
            gate.compare(where, metric, direction, base_row.get(metric), cand_row.get(metric))


def gate_incremental(gate, base, cand):
    # Storage is deterministic (bytes written for a churn level): gate it
    # tightly alongside the sweep walls.
    for section, key, metrics in (
        ("Storage", "Churn", [("DeltaBytes", "lower"), ("FullSweep", "lower"), ("DeltaSweep", "lower")]),
        ("Compute", "Mode", [("Wall", "lower")]),
    ):
        base_rows = base.get(section) or []
        cand_rows = cand.get(section) or []
        gate_rows(
            gate,
            f"incremental.{section}",
            {"key": (key,), "metrics": metrics},
            base_rows,
            cand_rows,
        )


def select_baseline(directory):
    """Pick the newest committed baseline: BENCH_PR<N>.json with the
    largest N, compared as an integer. Exits nonzero (listing everything
    considered) when no file parses — a gate with no baseline must be
    loud, not green."""
    pat = re.compile(r"^BENCH_PR(\d+)\.json$")
    try:
        names = sorted(os.listdir(directory))
    except OSError as e:
        sys.exit(f"perf_gate: --baseline-dir: {e}")
    numbered = []
    near_misses = []
    for name in names:
        m = pat.match(name)
        if m:
            numbered.append((int(m.group(1)), name))
        elif name.startswith("BENCH") and name.endswith(".json"):
            near_misses.append(name)
    if not numbered:
        considered = ", ".join(near_misses) if near_misses else "no BENCH*.json files at all"
        sys.exit(
            f"perf_gate: no baseline matching BENCH_PR<N>.json in {directory!r} "
            f"(considered: {considered})"
        )
    pr, name = max(numbered)
    print(f"perf gate: baseline {name} (PR {pr}, newest of {len(numbered)} committed)")
    return os.path.join(directory, name)


def main():
    ap = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("snapshots", nargs="+", metavar="SNAPSHOT",
                    help="BASELINE CANDIDATE, or just CANDIDATE with --baseline-dir")
    ap.add_argument("--baseline-dir", metavar="DIR",
                    help="select the baseline automatically: highest-numbered BENCH_PR<N>.json in DIR")
    ap.add_argument("--threshold", type=float, default=0.25, help="relative regression that fails the gate (default 0.25)")
    ap.add_argument("--noise-floor-ms", type=float, default=5.0, help="duration metrics below this baseline value are informational only")
    args = ap.parse_args()

    if args.baseline_dir is not None:
        if len(args.snapshots) != 1:
            ap.error("--baseline-dir takes exactly one positional snapshot (the candidate)")
        args.baseline = select_baseline(args.baseline_dir)
        args.candidate = args.snapshots[0]
    else:
        if len(args.snapshots) != 2:
            ap.error("expected BASELINE CANDIDATE (or --baseline-dir DIR CANDIDATE)")
        args.baseline, args.candidate = args.snapshots

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.candidate) as f:
            cand = json.load(f)
    except OSError as e:
        sys.exit(f"perf_gate: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"perf_gate: malformed snapshot: {e}")

    for doc, name in ((base, args.baseline), (cand, args.candidate)):
        if doc.get("schema") != 3:
            sys.exit(f"perf_gate: {name}: unsupported schema {doc.get('schema')} (want 3)")

    print(f"perf gate: {args.baseline} ({base.get('git_sha', '?')[:12]}) -> "
          f"{args.candidate} ({cand.get('git_sha', '?')[:12]}), threshold {args.threshold:.0%}")

    gate = Gate(args.threshold, args.noise_floor_ms * 1e6)
    base_res = base.get("results", {})
    cand_res = cand.get("results", {})
    shared = sorted(set(base_res) & set(cand_res))
    for name in sorted(set(base_res) | set(cand_res)):
        if name not in shared:
            print(f"  skip  {name}: only in {'baseline' if name in base_res else 'candidate'}")
            gate.skipped += 1
    for name in shared:
        if name in ROW_EXPERIMENTS:
            gate_rows(gate, name, ROW_EXPERIMENTS[name], base_res[name], cand_res[name])
        elif name == "incremental":
            gate_incremental(gate, base_res[name], cand_res[name])
        else:
            print(f"  skip  {name}: no comparison plan")
            gate.skipped += 1

    print(f"perf gate: {gate.checked} metrics checked, {gate.skipped} skipped, "
          f"{len(gate.failures)} regression(s)")
    if gate.failures:
        print("regressions:")
        for f in gate.failures:
            print(f"  {f}")
        sys.exit(1)


if __name__ == "__main__":
    main()
