#!/usr/bin/env bash
# shard_smoke.sh — sharded-serving smoke test: 3 ranks + router, real
# processes over loopback TCP.
#
# Topology: 3 ranks in 2 replica groups — group 0 = {rank0, rank1}
# (meshed, each owning half the partitions), group 1 = {rank2} (a full
# single-rank copy). The script checks the sharding contract end to end:
#
#   1. pinned TDSP / top-N / meme queries through the router answer
#      byte-identical to a single-process tsserve on the same dataset;
#   2. 200 concurrent mixed queries: only 200/429, every kind succeeds,
#      accepted-query p99 under a bound;
#   3. SIGKILL rank 1 mid-load: the load run still sees only 200/429
#      (zero wrong answers — group 0 dies, sweeps fail over to group 1);
#   4. after the kill, the pinned queries still answer byte-identical,
#      the router's /metrics shows tsshard_failovers_total > 0, and the
#      surviving group-0 rank shows tscluster_retries_total > 0 (the mesh
#      resilience machinery saw the dead peer);
#   5. SIGTERM drains the router and the surviving ranks cleanly.
#
# Environment: SMOKE_DIR (workdir, default mktemp), SMOKE_PORT (base
# port, default 7871), SERVELOAD_P99 (latency bound, default 30s —
# generous because a failover stalls one sweep for the mesh recovery
# window; the real latency expectation lives in tsbench -exp shard).
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

WORK="${SMOKE_DIR:-$(mktemp -d /tmp/tsgraph-shard-smoke.XXXXXX)}"
PORT="${SMOKE_PORT:-7871}"
P99="${SERVELOAD_P99:-30s}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/tsserve" ./cmd/tsserve
go build -o "$WORK/serveload" ./scripts/serveload
go run ./cmd/tsgen -out "$WORK/ds" -rows 24 -cols 24 -steps 12 -data both \
    -pack 4 -parts 4 -seed 7 >/dev/null

RANKS="127.0.0.1:$PORT,127.0.0.1:$((PORT + 1)),127.0.0.1:$((PORT + 2))"
MESH="127.0.0.1:$((PORT + 10)),127.0.0.1:$((PORT + 11)),127.0.0.1:$((PORT + 12))"
SHARD=(-ranks "$RANKS" -mesh "$MESH" -replicas 2)

cleanup() {
    kill "${PIDS[@]}" 2>/dev/null || true
}
PIDS=()
trap cleanup EXIT

echo "== boot 3 ranks (group 0 = ranks 0,1 meshed; group 1 = rank 2)"
for r in 0 1 2; do
    "$WORK/tsserve" -in "$WORK/ds" -rank "$r" "${SHARD[@]}" \
        -addr "127.0.0.1:$((PORT + 20 + r))" -instance-cache 2 \
        -mesh-recovery 1s >"$WORK/rank_$r.out" 2>&1 &
    PIDS+=($!)
done
RANK0=${PIDS[0]} RANK1=${PIDS[1]} RANK2=${PIDS[2]}
for r in 0 1 2; do
    wait_listen "$WORK/rank_$r.out" "${PIDS[$r]}" >/dev/null
done

echo "== boot router + single-process oracle"
"$WORK/tsserve" -in "$WORK/ds" -router "${SHARD[@]}" \
    -addr "127.0.0.1:$((PORT + 30))" -result-cache 0 \
    -shard-cooldown 2s >"$WORK/router.out" 2>&1 &
ROUTER=$!
PIDS+=("$ROUTER")
"$WORK/tsserve" -in "$WORK/ds" -addr "127.0.0.1:$((PORT + 31))" \
    -result-cache 0 >"$WORK/oracle.out" 2>&1 &
ORACLE_PID=$!
PIDS+=("$ORACLE_PID")
RADDR="$(wait_listen "$WORK/router.out" "$ROUTER")"
OADDR="$(wait_listen "$WORK/oracle.out" "$ORACLE_PID")"
wait_healthz "$RADDR"
wait_healthz "$OADDR"
echo "router at $RADDR, oracle at $OADDR"

# pinned_queries OUT — write one JSON query per line, built from the
# oracle's /stats sample vertices so the set is dataset-derived.
pinned_queries() {
    curl -sf "http://$OADDR/stats" -o "$WORK/stats.json"
    python3 - "$WORK/stats.json" >"$1" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
vs = st["sample_vertices"]
qs = [
    {"kind": "tdsp", "source": vs[0], "target": vs[-1]},
    {"kind": "tdsp", "source": vs[-1], "target": vs[0], "depart": 3},
    {"kind": "topn", "attr": "load", "n": 5, "from": 0, "count": 4},
    {"kind": "meme", "tag": "#meme"},
    {"kind": "meme", "tag": "#meme", "vertex": vs[1]},
]
for q in qs:
    print(json.dumps(q))
EOF
}

# answers ADDR QUERIES OUT — POST each pinned query, record "body status"
# per line. The query_id is a per-server admission serial, not part of the
# answer, so it is stripped before the byte-level diff.
answers() {
    local addr="$1" queries="$2" out="$3" line
    : >"$out"
    while IFS= read -r line; do
        curl -s -X POST "http://${addr}/query" -d "$line" \
            -w ' status=%{http_code}' \
            | sed -E 's/,?"query_id":"[^"]*"//' >>"$out" || return 1
        printf '\n' >>"$out"
    done <"$queries"
}

echo "== pinned queries: router answers byte-identical to the oracle"
pinned_queries "$WORK/queries.jsonl"
answers "$OADDR" "$WORK/queries.jsonl" "$WORK/oracle.ans"
answers "$RADDR" "$WORK/queries.jsonl" "$WORK/router.ans"
if ! diff "$WORK/oracle.ans" "$WORK/router.ans"; then
    echo "FAIL: routed answers differ from the single-process oracle"
    exit 1
fi
grep -q 'status=200' "$WORK/oracle.ans" \
    || { echo "FAIL: pinned queries never answered 200"; cat "$WORK/oracle.ans"; exit 1; }

echo "== 200 concurrent mixed queries through the router (only 200/429, p99 <= $P99)"
"$WORK/serveload" -addr "http://$RADDR" -n 200 -c 200 -p99 "$P99"

echo "== SIGKILL rank 1 under load (group 0 dies; zero wrong answers allowed)"
"$WORK/serveload" -addr "http://$RADDR" -n 1000 -c 200 -p99 "$P99" \
    >"$WORK/load_kill.out" 2>&1 &
LOAD=$!
sleep 0.3
kill -9 "$RANK1"
if ! wait "$LOAD"; then
    echo "FAIL: load run with a killed replica saw a wrong answer or bad status"
    cat "$WORK/load_kill.out"
    exit 1
fi
cat "$WORK/load_kill.out"

echo "== post-kill: failover to group 1 keeps answers byte-identical"
answers "$RADDR" "$WORK/queries.jsonl" "$WORK/router_postkill.ans"
if ! diff "$WORK/oracle.ans" "$WORK/router_postkill.ans"; then
    echo "FAIL: post-failover answers differ from the oracle"
    exit 1
fi

echo "== recovery is visible: router failovers and surviving-rank retries"
# scrape_sum ADDR NAME — sum a counter family across its label sets,
# polling (up to 10s) until the sum goes positive; prints the final sum.
# The poll matters: the surviving rank's mesh retries finish a moment
# after the router has already failed the sweep over to group 1.
scrape_sum() {
    local addr="$1" name="$2" tmp sum=0
    tmp="$(mktemp)"
    for _ in $(seq 20); do
        fetch_metrics "$addr" "$tmp" || { rm -f "$tmp"; return 1; }
        sum="$(awk -v name="$name" 'index($1, name) == 1 { s += $2 } END { printf "%d", s }' "$tmp")"
        if [ "$sum" -gt 0 ]; then break; fi
        sleep 0.5
    done
    rm -f "$tmp"
    printf '%s\n' "$sum"
}
FAILOVERS="$(scrape_sum "$RADDR" tsshard_failovers_total)"
[ "$FAILOVERS" -gt 0 ] \
    || { echo "FAIL: router recorded no failovers after the kill"; exit 1; }
RETRIES="$(scrape_sum "127.0.0.1:$((PORT + 20))" tscluster_retries_total)"
[ "$RETRIES" -gt 0 ] \
    || { echo "FAIL: surviving group-0 rank recorded no mesh retries"; exit 1; }
echo "   tsshard_failovers_total=$FAILOVERS tscluster_retries_total=$RETRIES"

echo "== SIGTERM drains the router and surviving ranks cleanly"
for victim in "$ROUTER" "$RANK0" "$RANK2" "$ORACLE_PID"; do
    kill -TERM "$victim"
done
wait "$ROUTER" || { echo "FAIL: router exited nonzero"; cat "$WORK/router.out"; exit 1; }
wait "$RANK0" || { echo "FAIL: rank 0 exited nonzero"; cat "$WORK/rank_0.out"; exit 1; }
wait "$RANK2" || { echo "FAIL: rank 2 exited nonzero"; cat "$WORK/rank_2.out"; exit 1; }
trap - EXIT
grep -q "drained, exiting" "$WORK/router.out" \
    || { echo "FAIL: router drain never logged"; cat "$WORK/router.out"; exit 1; }
grep -q "drained, exiting" "$WORK/rank_2.out" \
    || { echo "FAIL: rank 2 drain never logged"; cat "$WORK/rank_2.out"; exit 1; }

echo "PASS: shard smoke"
