# lib.sh — shared helpers for the smoke scripts. Source it, don't run it:
#
#   . "$(dirname "$0")/lib.sh"
#
# Every helper is `set -euo pipefail`-clean: no helper pipes curl into
# grep (grep exiting at the first match would EPIPE curl's next write and
# fail the pipeline spuriously), and failures print context to stderr and
# return nonzero instead of exiting the caller's shell directly.

# wait_listen LOG PID [PREFIX]
# Wait (up to 5s) for the daemon whose stdout is teed to LOG to print
# "PREFIX: listening on ADDR"; prints ADDR on stdout. Fails fast if PID
# dies first. PREFIX defaults to tsserve.
wait_listen() {
    local log="$1" pid="$2" prefix="${3:-tsserve}" addr=""
    for _ in $(seq 50); do
        addr="$(sed -n "s/^${prefix}: listening on //p" "$log")"
        if [ -n "$addr" ]; then
            printf '%s\n' "$addr"
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: ${prefix} died at boot" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "FAIL: ${prefix} never listened" >&2
    cat "$log" >&2
    return 1
}

# wait_healthz ADDR
# Poll GET http://ADDR/healthz (up to 5s) until it answers "ok".
wait_healthz() {
    local addr="$1" out=""
    for _ in $(seq 50); do
        out="$(curl -sf "http://${addr}/healthz" 2>/dev/null || true)"
        case "$out" in ok*) return 0 ;; esac
        sleep 0.1
    done
    echo "FAIL: ${addr}/healthz never answered ok" >&2
    return 1
}

# fetch_metrics ADDR OUT
# GET http://ADDR/metrics into the file OUT (fetch-then-grep pattern).
fetch_metrics() {
    curl -sf "http://$1/metrics" -o "$2" \
        || { echo "FAIL: /metrics fetch from $1 failed" >&2; return 1; }
}

# require_metric FILE NAME
# Assert a fetched metrics file carries a family (^-anchored grep).
require_metric() {
    grep -q "^$2" "$1" \
        || { echo "FAIL: metrics lack $2" >&2; tail -20 "$1" >&2; return 1; }
}

# scrape_metric ADDR NAME
# Fetch /metrics and print the value of the first sample named NAME, e.g.
#   wm="$(scrape_metric 127.0.0.1:8090 tsingest_watermark)"
scrape_metric() {
    local tmp val
    tmp="$(mktemp)"
    fetch_metrics "$1" "$tmp" || { rm -f "$tmp"; return 1; }
    val="$(awk -v name="$2" '$1 == name { print $2; exit }' "$tmp")"
    rm -f "$tmp"
    [ -n "$val" ] || { echo "FAIL: metric $2 absent from $1/metrics" >&2; return 1; }
    printf '%s\n' "$val"
}
