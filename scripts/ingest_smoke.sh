#!/usr/bin/env bash
# ingest_smoke.sh — end-to-end live-ingestion smoke test.
#
# Boots tsserve -ingest on a delta-encoded dataset and checks the live
# ingestion contract over real HTTP:
#
#   1. streamed mutations answer 200 and the X-Tsserve-Watermark header
#      advances strictly monotonically, while concurrent queries keep
#      getting non-5xx answers;
#   2. the ingest metrics (watermark, append counter) agree with the
#      stream, a query pinned at the boot watermark is byte-identical
#      before and after ingestion (snapshot isolation), and TDSP answers
#      pinned at the final watermark match what offline tsrun computes
#      over the flushed dataset — which must cover the streamed
#      timesteps;
#   3. SIGKILL (no drain, no flush) loses nothing: a restarted tsserve
#      replays the WAL, reports the same watermark, and the pinned
#      answers are unchanged;
#   4. the restarted server still drains cleanly on SIGTERM.
#
# Environment: SMOKE_DIR (workdir, default mktemp).
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

WORK="${SMOKE_DIR:-$(mktemp -d /tmp/tsgraph-ingest-smoke.XXXXXX)}"
STEPS=6 # timesteps streamed over /ingest
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/tsserve" ./cmd/tsserve
go build -o "$WORK/tsrun" ./cmd/tsrun
go run ./cmd/tsgen -out "$WORK/ds" -rows 16 -cols 16 -steps 6 -data both \
    -pack 4 -snapshot-every 3 -parts 2 -seed 7 >/dev/null

boot() { # boot LOGFILE -> sets SRV; ADDR printed by wait_listen
    "$WORK/tsserve" -in "$WORK/ds" -addr 127.0.0.1:0 -ingest -retain-mb 4 \
        >"$1" 2>&1 &
    SRV=$!
}

# pinned_tdsp ADDR SRC TGT WM — answer body of a TDSP query pinned at
# watermark WM, canonicalized (the per-request query_id dropped) so equal
# answers compare byte-equal.
pinned_tdsp() {
    curl -sf "http://$1/query" \
        -d "{\"kind\":\"tdsp\",\"source\":$2,\"target\":$3,\"watermark\":$4}" \
        | python3 -c 'import json,sys
a = json.load(sys.stdin)
a.pop("query_id", None)
print(json.dumps(a, sort_keys=True))'
}

echo "== boot tsserve -ingest"
boot "$WORK/tsserve.out"
trap 'kill -9 "$SRV" 2>/dev/null || true' EXIT
ADDR="$(wait_listen "$WORK/tsserve.out" "$SRV")"
wait_healthz "$ADDR"
BASE_WM="$(scrape_metric "$ADDR" tsingest_watermark)"
echo "tsserve at $ADDR, watermark $BASE_WM"

# Valid vertex ids for mutations and queries, straight from /stats.
mapfile -t VERTS < <(curl -sf "http://$ADDR/stats" \
    | python3 -c 'import json,sys; [print(v) for v in json.load(sys.stdin)["sample_vertices"][:16]]')
[ "${#VERTS[@]}" -ge 8 ] || { echo "FAIL: /stats offered only ${#VERTS[@]} sample vertices"; exit 1; }
SRC="${VERTS[0]}"

# A pinned answer captured before any ingestion: the same pin must answer
# byte-identically after the head has moved.
PRE_PIN="$(pinned_tdsp "$ADDR" "$SRC" "${VERTS[7]}" "$BASE_WM")"

echo "== stream $STEPS timesteps under concurrent queries"
QLOG="$WORK/queries.codes"
: >"$QLOG"
(
    # Closed-loop background clients: live-head tdsp + meme queries must
    # keep answering (non-5xx) while packs are republished under them.
    while :; do
        curl -s -o /dev/null -w '%{http_code}\n' "http://$ADDR/query" \
            -d "{\"kind\":\"tdsp\",\"source\":$SRC,\"target\":${VERTS[3]}}" >>"$QLOG" 2>/dev/null || true
        curl -s -o /dev/null -w '%{http_code}\n' "http://$ADDR/query" \
            -d '{"kind":"meme","tag":"#smoke"}' >>"$QLOG" 2>/dev/null || true
    done
) &
QPID=$!

PREV_WM="$BASE_WM"
for i in $(seq 0 $((STEPS - 1))); do
    BODY="{\"vertices\":[{\"id\":${VERTS[$i]},\"attr\":\"tweets\",\"value\":[\"#smoke\"]}]}"
    HDRS="$WORK/append-$i.hdrs"
    code="$(curl -s -D "$HDRS" -o "$WORK/append-$i.json" -w '%{http_code}' \
        "http://$ADDR/ingest" -d "$BODY")"
    [ "$code" = 200 ] || { echo "FAIL: append $i answered $code"; cat "$WORK/append-$i.json"; exit 1; }
    wm="$(tr -d '\r' <"$HDRS" | sed -n 's/^[Xx]-[Tt]sserve-[Ww]atermark: //p')"
    [ -n "$wm" ] || { echo "FAIL: append $i carried no watermark header"; cat "$HDRS"; exit 1; }
    [ "$wm" -gt "$PREV_WM" ] || { echo "FAIL: watermark not monotonic: $PREV_WM -> $wm"; exit 1; }
    PREV_WM="$wm"
done
kill "$QPID" 2>/dev/null || true
wait "$QPID" 2>/dev/null || true
WANT_WM=$((BASE_WM + STEPS))
[ "$PREV_WM" = "$WANT_WM" ] || { echo "FAIL: final watermark $PREV_WM, want $WANT_WM"; exit 1; }
grep -qE '^5' "$QLOG" && { echo "FAIL: concurrent queries saw 5xx:"; sort "$QLOG" | uniq -c; exit 1; }
echo "   watermark $BASE_WM -> $PREV_WM, $(wc -l <"$QLOG") concurrent queries, no 5xx"

echo "== ingest metrics agree with the stream"
[ "$(scrape_metric "$ADDR" tsingest_watermark)" = "$WANT_WM" ] \
    || { echo "FAIL: tsingest_watermark disagrees"; exit 1; }
[ "$(scrape_metric "$ADDR" tsingest_appends_total)" = "$STEPS" ] \
    || { echo "FAIL: tsingest_appends_total != $STEPS"; exit 1; }

echo "== a pinned watermark is a stable snapshot"
POST_PIN="$(pinned_tdsp "$ADDR" "$SRC" "${VERTS[7]}" "$BASE_WM")"
[ "$POST_PIN" = "$PRE_PIN" ] || {
    echo "FAIL: answer pinned at watermark $BASE_WM changed after ingestion:"
    echo "  before: $PRE_PIN"
    echo "  after:  $POST_PIN"
    exit 1
}

echo "== pinned-watermark answers match offline tsrun over the flushed dataset"
# Every append is durably published before it is visible, so an offline
# run over the same directory must see the streamed timesteps and compute
# the same arrivals.
TSRUN_OUT="$WORK/tsrun-tdsp.txt"
"$WORK/tsrun" -in "$WORK/ds" -algo tdsp -source "$SRC" -v >"$TSRUN_OUT"
OFF_STEPS="$(sed -n 's/^dataset .*, \([0-9]*\) instances, .*/\1/p' "$TSRUN_OUT")"
[ "$OFF_STEPS" = "$WANT_WM" ] \
    || { echo "FAIL: offline tsrun saw $OFF_STEPS instances, want $WANT_WM"; head -3 "$TSRUN_OUT"; exit 1; }
COMPARED=0
for t in "${VERTS[@]:1:6}"; do
    # tsrun -v prints "tdsp <id> = <arrival>" for every reached vertex.
    off="$(awk -v id="$t" '$1 == "tdsp" && $2 == id { print $4 }' "$TSRUN_OUT")"
    srv="$(pinned_tdsp "$ADDR" "$SRC" "$t" "$WANT_WM" \
        | python3 -c 'import json,sys; a=json.load(sys.stdin)["tdsp"]; print("%.1f" % a["arrival"] if a["reached"] else "unreached")')"
    want="${off:-unreached}"
    [ "$srv" = "$want" ] \
        || { echo "FAIL: target $t: served arrival $srv, offline tsrun $want"; exit 1; }
    [ "$srv" = "unreached" ] || COMPARED=$((COMPARED + 1))
done
[ "$COMPARED" -ge 2 ] || { echo "FAIL: only $COMPARED reached targets compared"; exit 1; }
echo "   $COMPARED arrivals identical served-vs-offline over $OFF_STEPS instances"

echo "== SIGKILL, restart, WAL replay restores the head"
FINAL_PIN="$(pinned_tdsp "$ADDR" "$SRC" "${VERTS[7]}" "$WANT_WM")"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
boot "$WORK/tsserve2.out"
trap 'kill -9 "$SRV" 2>/dev/null || true' EXIT
ADDR="$(wait_listen "$WORK/tsserve2.out" "$SRV")"
wait_healthz "$ADDR"
grep -q "ingest enabled: watermark $WANT_WM," "$WORK/tsserve2.out" \
    || { echo "FAIL: restart did not recover watermark $WANT_WM"; cat "$WORK/tsserve2.out"; exit 1; }
REPLAY_PIN="$(pinned_tdsp "$ADDR" "$SRC" "${VERTS[7]}" "$WANT_WM")"
[ "$REPLAY_PIN" = "$FINAL_PIN" ] || {
    echo "FAIL: post-crash pinned answer changed:"
    echo "  before: $FINAL_PIN"
    echo "  after:  $REPLAY_PIN"
    exit 1
}
echo "   recovered watermark $WANT_WM, pinned answer unchanged"

echo "== restarted server drains cleanly"
kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "FAIL: tsserve exited nonzero after SIGTERM"
    cat "$WORK/tsserve2.out"
    exit 1
fi
trap - EXIT
grep -q "drained, exiting" "$WORK/tsserve2.out" \
    || { echo "FAIL: drain never logged"; cat "$WORK/tsserve2.out"; exit 1; }

echo "PASS: ingest smoke"
