// Command serveload is the CI load generator for tsserve: it fires a
// mixed burst of concurrent queries (TDSP, top-N, meme) at a running
// daemon and fails unless the server behaves like a server under load —
// every response is 200 or 429, every 429 carries a Retry-After hint, at
// least one query of each kind succeeds, and the p99 latency of accepted
// queries stays under a bound.
//
// Usage:
//
//	serveload -addr http://127.0.0.1:8090 -n 200 -c 50 -p99 5s
//
// Query endpoints come from the daemon itself: /stats lists sample
// vertices valid in the resident template, so the generator needs no
// knowledge of the dataset beyond the top-N attribute and meme tag names.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type stats struct {
	Timesteps      int     `json:"timesteps"`
	SampleVertices []int64 `json:"sample_vertices"`
}

type query struct {
	Kind   string `json:"kind"`
	Source int64  `json:"source,omitempty"`
	Target int64  `json:"target,omitempty"`
	Depart int    `json:"depart,omitempty"`
	Attr   string `json:"attr,omitempty"`
	N      int    `json:"n,omitempty"`
	From   int    `json:"from,omitempty"`
	Count  int    `json:"count,omitempty"`
	Tag    string `json:"tag,omitempty"`
	Vertex *int64 `json:"vertex,omitempty"`
}

type outcome struct {
	kind    string
	status  int
	latency time.Duration
	err     error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serveload: ")
	var (
		addr     = flag.String("addr", "", "tsserve base URL, e.g. http://127.0.0.1:8090 (required)")
		n        = flag.Int("n", 200, "total queries to send")
		c        = flag.Int("c", 50, "concurrent clients")
		p99Bound = flag.Duration("p99", 0, "fail if the p99 latency of accepted queries exceeds this (0 disables)")
		topnAttr = flag.String("topn-attr", "load", "float vertex attribute for top-N queries")
		memeTag  = flag.String("meme-tag", "#meme", "hashtag for meme queries")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	st, err := fetchStats(client, *addr)
	if err != nil {
		log.Fatal(err)
	}
	if len(st.SampleVertices) < 2 || st.Timesteps < 1 {
		log.Fatalf("unusable /stats: %d sample vertices, %d timesteps", len(st.SampleVertices), st.Timesteps)
	}
	queries := buildMix(st, *n, *topnAttr, *memeTag)

	var (
		next int
		mu   sync.Mutex
		outs = make([]outcome, 0, *n)
		wg   sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < *c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(queries) {
					mu.Unlock()
					return
				}
				q := queries[next]
				next++
				mu.Unlock()
				o := fire(client, *addr, q)
				mu.Lock()
				outs = append(outs, o)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	okByKind := map[string]int{}
	var rejected, failed int
	var lats []time.Duration
	for _, o := range outs {
		switch {
		case o.err != nil:
			failed++
			log.Printf("FAIL %s: %v", o.kind, o.err)
		case o.status == http.StatusOK:
			okByKind[o.kind]++
			lats = append(lats, o.latency)
		case o.status == http.StatusTooManyRequests:
			rejected++
		default:
			failed++
			log.Printf("FAIL %s: unexpected status %d", o.kind, o.status)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	ok := okByKind["tdsp"] + okByKind["topn"] + okByKind["meme"]
	fmt.Printf("serveload: %d queries in %v: %d ok (tdsp=%d topn=%d meme=%d), %d rejected (429), %d failed\n",
		len(outs), elapsed.Round(time.Millisecond), ok,
		okByKind["tdsp"], okByKind["topn"], okByKind["meme"], rejected, failed)
	fmt.Printf("serveload: accepted latency p50=%v p95=%v p99=%v\n",
		quantile(0.50).Round(time.Microsecond), quantile(0.95).Round(time.Microsecond), quantile(0.99).Round(time.Microsecond))

	switch {
	case failed > 0:
		log.Fatalf("%d queries failed (only 200 and 429 are acceptable under load)", failed)
	case okByKind["tdsp"] == 0 || okByKind["topn"] == 0 || okByKind["meme"] == 0:
		log.Fatalf("not every query kind succeeded at least once: %v", okByKind)
	case *p99Bound > 0 && quantile(0.99) > *p99Bound:
		log.Fatalf("p99 %v exceeds bound %v", quantile(0.99), *p99Bound)
	}
}

func fetchStats(client *http.Client, addr string) (*stats, error) {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats: %s", resp.Status)
	}
	var st stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("/stats: %w", err)
	}
	return &st, nil
}

// buildMix is ~70% TDSP (the batchable class), ~15% top-N, ~15% meme,
// deterministically interleaved so every run exercises all three classes
// concurrently.
func buildMix(st *stats, n int, topnAttr, memeTag string) []query {
	vs := st.SampleVertices
	out := make([]query, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 5:
			count := 2
			if count > st.Timesteps {
				count = st.Timesteps
			}
			out = append(out, query{Kind: "topn", Attr: topnAttr, N: 3, From: i % st.Timesteps, Count: count})
		case i%7 == 6:
			q := query{Kind: "meme", Tag: memeTag}
			if i%2 == 0 {
				v := vs[i%len(vs)]
				q.Vertex = &v
			}
			out = append(out, q)
		default:
			src := vs[i%len(vs)]
			tgt := vs[(i*3+1)%len(vs)]
			if tgt == src {
				tgt = vs[(i+1)%len(vs)]
			}
			out = append(out, query{Kind: "tdsp", Source: src, Target: tgt, Depart: i % 2})
		}
	}
	return out
}

func fire(client *http.Client, addr string, q query) outcome {
	body, err := json.Marshal(q)
	if err != nil {
		return outcome{kind: q.Kind, err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{kind: q.Kind, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	lat := time.Since(start)
	if err != nil {
		return outcome{kind: q.Kind, err: err}
	}
	o := outcome{kind: q.Kind, status: resp.StatusCode, latency: lat}
	switch resp.StatusCode {
	case http.StatusOK:
		var ans struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(payload, &ans); err != nil || ans.Kind != q.Kind {
			o.err = fmt.Errorf("malformed answer (kind %q): %s", ans.Kind, payload)
		}
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			o.err = fmt.Errorf("429 without Retry-After")
		}
	}
	return o
}
