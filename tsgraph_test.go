package tsgraph_test

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"tsgraph"
)

// buildTrafficFixture assembles a small road dataset entirely through the
// public API.
func buildTrafficFixture(tb testing.TB) (*tsgraph.Template, *tsgraph.Collection, []*tsgraph.PartitionData) {
	tb.Helper()
	tmpl := tsgraph.RoadNetwork(tsgraph.RoadConfig{Rows: 12, Cols: 12, RemoveFrac: 0.1, Seed: 3})
	coll, err := tsgraph.RandomLatencies(tmpl, tsgraph.LatencyConfig{
		Timesteps: 15, T0: 0, Delta: 30, Min: 1, Max: 25, Seed: 4,
	})
	if err != nil {
		tb.Fatal(err)
	}
	assign, err := tsgraph.PartitionMultilevel(tmpl, 3, 5)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		tb.Fatal(err)
	}
	return tmpl, coll, parts
}

func TestPublicTDSPEndToEnd(t *testing.T) {
	tmpl, coll, parts := buildTrafficFixture(t)
	rec := tsgraph.NewRecorder(3)
	arrivals, res, err := tsgraph.TDSP(tmpl, parts, 0, tsgraph.MemorySource{C: coll}, 30,
		tsgraph.AttrLatency, tsgraph.EngineConfig{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun == 0 {
		t.Fatal("no timesteps ran")
	}
	if arrivals[0] != 0 {
		t.Errorf("source arrival = %v", arrivals[0])
	}
	reached := 0
	for _, a := range arrivals {
		if !math.IsInf(a, 1) {
			reached++
		}
	}
	if reached < tmpl.NumVertices()/2 {
		t.Errorf("only %d of %d vertices reached", reached, tmpl.NumVertices())
	}
	if rec.NumTimesteps() != res.TimestepsRun {
		t.Errorf("recorder has %d timesteps, run reports %d", rec.NumTimesteps(), res.TimestepsRun)
	}
}

func TestPublicGoFSRoundTrip(t *testing.T) {
	tmpl, coll, parts := buildTrafficFixture(t)
	assign, _ := tsgraph.PartitionMultilevel(tmpl, 3, 5)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := tsgraph.WriteDataset(dir, coll, assign, 0, 0); err != nil {
		t.Fatal(err)
	}
	store, err := tsgraph.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := tsgraph.NewLoader(store)
	// TDSP over GoFS-backed instances must match the in-memory run.
	mem, _, err := tsgraph.TDSP(tmpl, parts, 0, tsgraph.MemorySource{C: coll}, 30,
		tsgraph.AttrLatency, tsgraph.EngineConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	disk, _, err := tsgraph.TDSP(tmpl, parts, 0, loader, 30,
		tsgraph.AttrLatency, tsgraph.EngineConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range mem {
		if mem[v] != disk[v] && !(math.IsInf(mem[v], 1) && math.IsInf(disk[v], 1)) {
			t.Fatalf("vertex %d: memory %v, gofs %v", v, mem[v], disk[v])
		}
	}
}

func TestPublicMemeAndHashtag(t *testing.T) {
	tmpl := tsgraph.SmallWorld(tsgraph.SmallWorldConfig{N: 500, M: 2, Seed: 6})
	sir, err := tsgraph.SIRTweets(tmpl, tsgraph.SIRConfig{
		Timesteps: 10, Delta: 60, Memes: []string{"#go"},
		SeedsPerMeme: 2, HitProb: 0.3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := tsgraph.PartitionMultilevel(tmpl, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		t.Fatal(err)
	}
	coloredAt, _, err := tsgraph.TrackMeme(tmpl, parts, "#go", tsgraph.AttrTweets,
		tsgraph.MemorySource{C: sir.Collection}, tsgraph.EngineConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	colored := 0
	for _, at := range coloredAt {
		if at >= 0 {
			colored++
		}
	}
	if colored == 0 {
		t.Error("meme tracking colored nothing")
	}
	stats, _, err := tsgraph.AggregateHashtag(tmpl, parts, "#go", tsgraph.AttrTweets,
		tsgraph.MemorySource{C: sir.Collection}, tsgraph.EngineConfig{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total == 0 || len(stats.Counts) != 10 {
		t.Errorf("hashtag stats: %+v", stats)
	}
}

// degreeProgram is a custom user program written against the public API: it
// sums vertex degrees per subgraph and reports one output per timestep.
type degreeProgram struct {
	mu     sync.Mutex
	totals map[int]int
}

func (p *degreeProgram) Compute(ctx *tsgraph.Context, sg *tsgraph.Subgraph, timestep, superstep int, msgs []tsgraph.Message) {
	sum := 0
	for _, lv := range sg.Verts {
		lo, hi := sg.Part.OutEdges(int(lv))
		sum += hi - lo
	}
	p.mu.Lock()
	p.totals[timestep] += sum
	p.mu.Unlock()
	ctx.Output(sum)
	ctx.VoteToHalt()
}

func TestPublicCustomProgram(t *testing.T) {
	tmpl, coll, parts := buildTrafficFixture(t)
	prog := &degreeProgram{totals: map[int]int{}}
	res, err := tsgraph.Run(&tsgraph.Job{
		Template: tmpl,
		Parts:    parts,
		Source:   tsgraph.MemorySource{C: coll},
		Program:  prog,
		Pattern:  tsgraph.Independent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 15 {
		t.Fatalf("ran %d timesteps", res.TimestepsRun)
	}
	// Degrees summed over all subgraphs equal the template edge count.
	for ts, total := range prog.totals {
		if total != tmpl.NumEdges() {
			t.Errorf("timestep %d degree total %d, want %d", ts, total, tmpl.NumEdges())
		}
	}
	if len(res.Outputs) == 0 {
		t.Error("no outputs recorded")
	}
}

func TestPublicVertexBaseline(t *testing.T) {
	tmpl, _, _ := buildTrafficFixture(t)
	assign, _ := tsgraph.PartitionMultilevel(tmpl, 3, 5)
	dist, vres, err := tsgraph.VertexSSSP(tmpl, assign, tsgraph.VertexConfig{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Errorf("source dist = %v", dist[0])
	}
	if vres.Supersteps < 5 {
		t.Errorf("vertex BFS on a road graph took only %d supersteps", vres.Supersteps)
	}
}

func TestPublicConnectedComponents(t *testing.T) {
	tmpl, coll, parts := buildTrafficFixture(t)
	labels, _, err := tsgraph.ConnectedComponents(tmpl, parts, tsgraph.MemorySource{C: coll}, tsgraph.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The generated road network is connected: one label everywhere.
	for v := 1; v < len(labels); v++ {
		if labels[v] != labels[0] {
			t.Fatalf("vertex %d label %d != %d", v, labels[v], labels[0])
		}
	}
}

func TestPublicStatsAndSchema(t *testing.T) {
	s, err := tsgraph.NewSchema([]string{"w"}, []tsgraph.AttrType{tsgraph.TFloat})
	if err != nil {
		t.Fatal(err)
	}
	b := tsgraph.NewBuilder("tiny", nil, s)
	b.AddUndirectedEdge(1, 2)
	b.AddUndirectedEdge(2, 3)
	tmpl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tsgraph.ComputeStats(tmpl, 2)
	if st.Vertices != 3 || st.DiameterLB != 2 {
		t.Errorf("stats: %+v", st)
	}
	coll := tsgraph.NewCollection(tmpl, 0, 1)
	ins := tsgraph.NewInstance(tmpl, 0, 0)
	if err := coll.Append(ins); err != nil {
		t.Fatal(err)
	}
}
