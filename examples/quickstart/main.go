// Quickstart: build a tiny time-series graph by hand, write a custom
// TI-BSP program against the public API, and run it with the sequentially
// dependent pattern.
//
// The program computes, per timestep, each subgraph's total sensor load and
// the running cumulative load carried along the temporal edge with
// SendToNextTimestep — a minimal end-to-end tour of the data model, the
// Compute contract and temporal messaging.
package main

import (
	"fmt"
	"log"

	"tsgraph"
)

// loadProgram sums the "load" vertex attribute per subgraph per timestep
// and accumulates a running total across timesteps through temporal
// messages.
type loadProgram struct{}

func (loadProgram) Compute(ctx *tsgraph.Context, sg *tsgraph.Subgraph, timestep, superstep int, msgs []tsgraph.Message) {
	// Previous timestep's running total arrives at superstep 0.
	running := 0.0
	for _, m := range msgs {
		running += m.Payload.(float64)
	}

	// Sum this instance's loads over the subgraph's vertices.
	loads := ctx.Instance().VertexFloats(ctx.Template(), tsgraph.AttrLoad)
	sum := 0.0
	for _, lv := range sg.Verts {
		sum += loads[sg.Part.GlobalIdx[lv]]
	}
	running += sum

	ctx.Output(fmt.Sprintf("subgraph %v: step load %.1f, cumulative %.1f", sg.SID, sum, running))
	ctx.SendToNextTimestep(running)
	ctx.VoteToHalt()
}

func main() {
	// 1. Template: a six-vertex sensor network with a float "load"
	//    attribute per vertex.
	vattrs, err := tsgraph.NewSchema([]string{tsgraph.AttrLoad}, []tsgraph.AttrType{tsgraph.TFloat})
	if err != nil {
		log.Fatal(err)
	}
	b := tsgraph.NewBuilder("sensors", vattrs, nil)
	for _, e := range [][2]tsgraph.VertexID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}} {
		b.AddUndirectedEdge(e[0], e[1])
	}
	tmpl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Instances: three timesteps of synthetic readings, δ = 60s.
	coll := tsgraph.NewCollection(tmpl, 0, 60)
	for step := 0; step < 3; step++ {
		ins := tsgraph.NewInstance(tmpl, step, coll.TimeOf(step))
		loads := ins.VertexFloats(tmpl, tsgraph.AttrLoad)
		for v := range loads {
			loads[v] = float64((step + 1) * (v + 1))
		}
		if err := coll.Append(ins); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Partition over two simulated hosts and derive subgraphs.
	assign, err := tsgraph.PartitionMultilevel(tmpl, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template %q: %d vertices over %d hosts\n", tmpl.Name, tmpl.NumVertices(), assign.K)

	// 4. Run the TI-BSP job.
	res, err := tsgraph.Run(&tsgraph.Job{
		Template: tmpl,
		Parts:    parts,
		Source:   tsgraph.MemorySource{C: coll},
		Program:  loadProgram{},
		Pattern:  tsgraph.SequentiallyDependent,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d timesteps, %d supersteps\n", res.TimestepsRun, res.Supersteps)
	for _, o := range res.Outputs {
		fmt.Printf("t%d %s\n", o.Timestep, o.Data)
	}
}
