// Traffic: time-dependent trip planning on a generated city road network —
// the paper's motivating Smart City scenario.
//
// The example generates a road template with 50 timesteps of fluctuating
// travel latencies, runs Time-Dependent Shortest Path (Alg 2) from a depot
// vertex, and contrasts the result with a naive static SSSP computed on the
// first instance only: the static plan underestimates real arrival times
// because latencies change while the vehicle is en route (the paper's Fig
// 5a scenario).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"tsgraph"
)

func main() {
	var (
		rows  = flag.Int("rows", 60, "road lattice rows")
		cols  = flag.Int("cols", 60, "road lattice cols")
		steps = flag.Int("steps", 50, "timesteps of traffic data")
		hosts = flag.Int("hosts", 4, "simulated hosts")
		seed  = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	tmpl := tsgraph.RoadNetwork(tsgraph.RoadConfig{
		Rows: *rows, Cols: *cols, RemoveFrac: 0.12, ShortcutFrac: 0.01, Seed: *seed,
	})
	stats := tsgraph.ComputeStats(tmpl, 4)
	fmt.Printf("city: %d intersections, %d road segments, diameter >= %d\n",
		stats.Vertices, stats.Edges, stats.DiameterLB)

	const delta = 120 // a fresh traffic snapshot every 2 minutes
	coll, err := tsgraph.RandomLatencies(tmpl, tsgraph.LatencyConfig{
		Timesteps: *steps, T0: 0, Delta: delta,
		Min: 5, Max: 90, Seed: *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	assign, err := tsgraph.PartitionMultilevel(tmpl, *hosts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned over %d hosts (%.2f%% edge cut)\n\n", *hosts, assign.CutFraction(tmpl)*100)

	depot := 0
	rec := tsgraph.NewRecorder(*hosts)
	arrivals, res, err := tsgraph.TDSP(tmpl, parts, depot, tsgraph.MemorySource{C: coll},
		delta, tsgraph.AttrLatency, tsgraph.EngineConfig{}, rec)
	if err != nil {
		log.Fatal(err)
	}

	// Naive plan: static SSSP over the first snapshot only.
	static, _, err := tsgraph.SSSP(tmpl, parts, depot, tsgraph.MemorySource{C: coll},
		0, tsgraph.AttrLatency, tsgraph.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	reached, worstGap, gapCount := 0, 0.0, 0
	var gaps []float64
	for v := range arrivals {
		if math.IsInf(arrivals[v], 1) {
			continue
		}
		reached++
		if !math.IsInf(static[v], 1) && static[v] < arrivals[v] {
			gap := arrivals[v] - static[v]
			gaps = append(gaps, gap)
			gapCount++
			if gap > worstGap {
				worstGap = gap
			}
		}
	}
	fmt.Printf("TDSP finished in %d of %d timesteps; %d of %d intersections reachable\n",
		res.TimestepsRun, *steps, reached, tmpl.NumVertices())
	fmt.Printf("static first-snapshot SSSP underestimates %d arrivals (it assumes traffic never changes)\n", gapCount)
	if len(gaps) > 0 {
		sort.Float64s(gaps)
		fmt.Printf("underestimate: median %.0fs, p90 %.0fs, worst %.0fs\n",
			gaps[len(gaps)/2], gaps[len(gaps)*9/10], worstGap)
	}

	// Farthest reachable destinations by true time-dependent arrival.
	type dest struct {
		v tsgraph.VertexID
		a float64
	}
	var far []dest
	for v, a := range arrivals {
		if !math.IsInf(a, 1) {
			far = append(far, dest{tmpl.VertexID(v), a})
		}
	}
	sort.Slice(far, func(i, j int) bool { return far[i].a > far[j].a })
	fmt.Println("\nhardest-to-reach intersections (true arrival from depot at t=0):")
	for i := 0; i < 5 && i < len(far); i++ {
		fmt.Printf("  intersection %-8d arrives %6.0fs (%.1f snapshots later)\n",
			far[i].v, far[i].a, far[i].a/delta)
	}

	fmt.Printf("\nrun: %d supersteps, simulated cluster time %v\n",
		res.Supersteps, res.SimTime.Round(1e6))
}
