// Hashtags: statistical aggregation of a hashtag across a time-series
// social graph with the eventually dependent pattern (§III-A).
//
// Every instance is counted independently; a Merge BSP then assembles each
// subgraph's per-timestep counts at a master subgraph, which emits the
// global per-timestep series, total, peak and maximum growth rate. The
// example also demonstrates GoFS persistence: the dataset is written to
// disk with temporal packing and the aggregation runs over the lazy loader.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tsgraph"
)

func main() {
	var (
		users = flag.Int("users", 4000, "social network size")
		steps = flag.Int("steps", 30, "timesteps of tweet data")
		hosts = flag.Int("hosts", 3, "simulated hosts")
		seed  = flag.Int64("seed", 31, "random seed")
	)
	flag.Parse()

	tmpl := tsgraph.SmallWorld(tsgraph.SmallWorldConfig{N: *users, M: 2, Seed: *seed})
	const tag = "#release"
	sir, err := tsgraph.SIRTweets(tmpl, tsgraph.SIRConfig{
		Timesteps: *steps, T0: 0, Delta: 600,
		Memes: []string{tag}, SeedsPerMeme: 4,
		HitProb: 0.12, RecoverAfter: 3, BackgroundTags: 80,
		Seed: *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	assign, err := tsgraph.PartitionMultilevel(tmpl, *hosts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}

	// Persist through GoFS and aggregate from disk, as a batch job would.
	dir, err := os.MkdirTemp("", "hashtags")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dsDir := filepath.Join(dir, "tweets")
	if err := tsgraph.WriteDataset(dsDir, sir.Collection, assign, 0, 0); err != nil {
		log.Fatal(err)
	}
	store, err := tsgraph.OpenDataset(dsDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users × %d timesteps on %d hosts, stored in GoFS slices\n",
		*users, store.Timesteps(), *hosts)

	stats, res, err := tsgraph.AggregateHashtag(tmpl, parts, tag, tsgraph.AttrTweets,
		tsgraph.NewLoader(store), tsgraph.EngineConfig{}, nil, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s: %d total occurrences, peak at t%d, max growth %+d/step (%d supersteps incl. merge)\n",
		stats.Hashtag, stats.Total, stats.PeakTimestep, stats.MaxRate, res.Supersteps)

	peak := int64(1)
	for _, c := range stats.Counts {
		if c > peak {
			peak = c
		}
	}
	fmt.Println("\noccurrences per timestep:")
	for t, c := range stats.Counts {
		bar := ""
		if c > 0 {
			bar = strings.Repeat("#", int(1+c*50/peak))
		}
		fmt.Printf("  t%-3d %6d %s\n", t, c, bar)
	}
}
