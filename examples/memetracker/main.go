// Memetracker: trace a viral meme through a social network over space and
// time (Alg 1 of the paper).
//
// An SIR epidemic process generates 40 timesteps of tweets on a power-law
// social graph; the sequentially dependent meme-tracking program performs a
// temporal BFS from the first carriers and reports the spread curve, the
// infection horizon per timestep, and the generator's ground truth for
// comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tsgraph"
)

func main() {
	var (
		users = flag.Int("users", 5000, "social network size")
		steps = flag.Int("steps", 40, "timesteps of tweet data")
		hit   = flag.Float64("hit", 0.10, "SIR hit probability")
		hosts = flag.Int("hosts", 4, "simulated hosts")
		seed  = flag.Int64("seed", 23, "random seed")
	)
	flag.Parse()

	tmpl := tsgraph.SmallWorld(tsgraph.SmallWorldConfig{N: *users, M: 3, Seed: *seed})
	stats := tsgraph.ComputeStats(tmpl, 4)
	fmt.Printf("social network: %d users, %d follow edges, diameter >= %d, top hub degree %d\n",
		stats.Vertices, stats.Edges, stats.DiameterLB, stats.MaxDegree)

	const meme = "#gopher"
	sir, err := tsgraph.SIRTweets(tmpl, tsgraph.SIRConfig{
		Timesteps: *steps, T0: 0, Delta: 300,
		Memes: []string{meme}, SeedsPerMeme: 3,
		HitProb: *hit, RecoverAfter: 4, BackgroundTags: 50,
		Seed: *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	assign, err := tsgraph.PartitionMultilevel(tmpl, *hosts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}

	rec := tsgraph.NewRecorder(*hosts)
	coloredAt, res, err := tsgraph.TrackMeme(tmpl, parts, meme, tsgraph.AttrTweets,
		tsgraph.MemorySource{C: sir.Collection}, tsgraph.EngineConfig{}, rec)
	if err != nil {
		log.Fatal(err)
	}

	// Spread curve: newly colored users per timestep (Fig 7c's series).
	perStep := make([]int, *steps)
	total := 0
	for _, at := range coloredAt {
		if at >= 0 {
			perStep[at]++
			total++
		}
	}
	fmt.Printf("\nmeme %s reached %d of %d users over %d timesteps (%d supersteps)\n",
		meme, total, *users, res.TimestepsRun, res.Supersteps)

	fmt.Println("\nspread curve (new users colored per timestep):")
	peak := 1
	for _, n := range perStep {
		if n > peak {
			peak = n
		}
	}
	for t, n := range perStep {
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+n*50/peak)
		fmt.Printf("  t%-3d %5d %s\n", t, n, bar)
	}

	// Cross-check against the generator's ground truth: every colored user
	// really carried the meme, and the tracker never colors earlier than
	// the infection.
	truth := sir.FirstInfected[meme]
	late, wrong := 0, 0
	for v, at := range coloredAt {
		if at < 0 {
			continue
		}
		switch {
		case truth[v] < 0:
			wrong++
		case at < truth[v]:
			wrong++
		case at > truth[v]:
			late++ // infected via a path the BFS only reached later
		}
	}
	fmt.Printf("\nground truth: %d colorings exactly on time, %d discovered late, %d false positives\n",
		total-late-wrong, late, wrong)

	fmt.Println("\nper-host utilization (compute / partition-overhead / sync):")
	for _, u := range rec.Utilizations() {
		fmt.Printf("  host %d: %5.1f%% / %5.1f%% / %5.1f%%\n",
			u.Partition, u.ComputeFrac()*100, u.FlushFrac()*100, u.BarrierFrac()*100)
	}
}
