// Powergrid: the paper's Smart Grid motivation — "changing power flows on
// edges, power consumption at vertices" — with slow topology change modeled
// through the isExists edge attribute.
//
// A transmission grid (road-like lattice) carries 24 hourly instances of
// consumption readings; an overnight storm keeps a corridor of lines down
// until 10:00. The example:
//
//  1. ranks the daily top consumers per hour with the independent-pattern
//     TopN (temporal parallelism enabled);
//  2. runs TDSP from the control center honoring isExists, showing crews
//     cannot reach substations behind downed lines until they are restored.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"tsgraph"
)

func main() {
	var (
		rows  = flag.Int("rows", 24, "grid rows")
		cols  = flag.Int("cols", 24, "grid cols")
		hours = flag.Int("hours", 24, "hourly instances")
		hosts = flag.Int("hosts", 3, "simulated hosts")
		seed  = flag.Int64("seed", 41, "random seed")
	)
	flag.Parse()

	// Template: a lattice grid with consumption on vertices and per-line
	// travel time plus an existence flag on edges.
	vattrs, err := tsgraph.NewSchema(
		[]string{tsgraph.AttrLoad},
		[]tsgraph.AttrType{tsgraph.TFloat})
	if err != nil {
		log.Fatal(err)
	}
	eattrs, err := tsgraph.NewSchema(
		[]string{tsgraph.AttrLatency, "exists"},
		[]tsgraph.AttrType{tsgraph.TFloat, tsgraph.TBool})
	if err != nil {
		log.Fatal(err)
	}
	b := tsgraph.NewBuilder("powergrid", vattrs, eattrs)
	id := func(r, c int) tsgraph.VertexID { return tsgraph.VertexID(r**cols + c) }
	for r := 0; r < *rows; r++ {
		for c := 0; c < *cols; c++ {
			if c+1 < *cols {
				b.AddUndirectedEdge(id(r, c), id(r, c+1))
			}
			if r+1 < *rows {
				b.AddUndirectedEdge(id(r, c), id(r+1, c))
			}
		}
	}
	tmpl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d substations, %d transmission lines\n", tmpl.NumVertices(), tmpl.NumEdges())

	// Instances: consumption follows a day curve; an overnight storm downs
	// every line into a middle column until hour 10.
	const delta = 3600
	rng := rand.New(rand.NewSource(*seed))
	coll := tsgraph.NewCollection(tmpl, 0, delta)
	li := tmpl.EdgeSchema().Index(tsgraph.AttrLatency)
	xi := tmpl.EdgeSchema().Index("exists")
	ci := tmpl.VertexSchema().Index(tsgraph.AttrLoad)
	stormCol := *cols / 2
	downedAt := func(e int, hour int) bool {
		if hour >= 10 {
			return false
		}
		// A line is in the storm corridor if either endpoint sits in the
		// storm column.
		head := int(tmpl.VertexID(tmpl.Target(e))) % *cols
		return head == stormCol
	}
	for h := 0; h < *hours; h++ {
		ins := tsgraph.NewInstance(tmpl, h, coll.TimeOf(h))
		// Day curve: consumption peaks at 19:00.
		peak := 1 - math.Abs(float64(h)-19)/19
		for v := 0; v < tmpl.NumVertices(); v++ {
			ins.VertexCols[ci].Floats[v] = 50 + 200*peak*rng.Float64()
		}
		for e := 0; e < tmpl.NumEdges(); e++ {
			ins.EdgeCols[li].Floats[e] = 600 + rng.Float64()*1200 // 10–30 min drives
			ins.EdgeCols[xi].Bools[e] = !downedAt(e, h)
		}
		if err := coll.Append(ins); err != nil {
			log.Fatal(err)
		}
	}

	assign, err := tsgraph.PartitionMultilevel(tmpl, *hosts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := tsgraph.BuildSubgraphs(tmpl, assign)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Daily top consumers (independent pattern, temporally parallel).
	top, _, err := tsgraph.TopN(tmpl, parts, tsgraph.AttrLoad, 3,
		tsgraph.MemorySource{C: coll}, tsgraph.EngineConfig{}, nil, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop consumers per hour (independent pattern):")
	for h := 0; h < *hours; h += 6 {
		fmt.Printf("  %02d:00 ", h)
		for _, vv := range top[h] {
			fmt.Printf(" substation %d (%.0f kW)", vv.Vertex, vv.Value)
		}
		fmt.Println()
	}

	// 2. Crew dispatch from the control center at the NW corner, honoring
	// line outages: with the storm corridor down, eastern substations are
	// only reachable after restoration.
	prog := tsgraph.NewTDSPProgram(parts, tmpl.VertexIndex(id(0, 0)), delta, tsgraph.AttrLatency)
	prog.ExistsAttr = "exists"
	res, err := tsgraph.Run(&tsgraph.Job{
		Template: tmpl, Parts: parts,
		Source:  tsgraph.MemorySource{C: coll},
		Program: prog, Pattern: tsgraph.SequentiallyDependent,
	})
	if err != nil {
		log.Fatal(err)
	}
	arr := prog.Arrivals(parts, tmpl)
	west := tmpl.VertexIndex(id(*rows/2, stormCol-2))
	east := tmpl.VertexIndex(id(*rows/2, stormCol+2))
	far := tmpl.VertexIndex(id(*rows-1, *cols-1))
	hourOf := func(a float64) string {
		if math.IsInf(a, 1) {
			return "unreachable"
		}
		return fmt.Sprintf("%02d:%02d", int(a)/3600, (int(a)%3600)/60)
	}
	fmt.Printf("\ncrew dispatch from the control center at 00:00 (storm closes column %d until 10:00):\n", stormCol)
	fmt.Printf("  west of the corridor:  arrival %s\n", hourOf(arr[west]))
	fmt.Printf("  east of the corridor:  arrival %s\n", hourOf(arr[east]))
	fmt.Printf("  far corner:            arrival %s\n", hourOf(arr[far]))
	fmt.Printf("  (%d timesteps, %d supersteps)\n", res.TimestepsRun, res.Supersteps)
}
