package tsgraph_test

import (
	"fmt"
	"log"
	"math"

	"tsgraph"
)

// ExampleRun shows a complete TI-BSP application: a three-vertex network
// with one float attribute, a two-timestep collection, and a Compute
// method that sums its subgraph's values and forwards the running total
// along the temporal edge.
func ExampleRun() {
	vattrs, _ := tsgraph.NewSchema([]string{"load"}, []tsgraph.AttrType{tsgraph.TFloat})
	b := tsgraph.NewBuilder("demo", vattrs, nil)
	b.AddUndirectedEdge(0, 1)
	b.AddUndirectedEdge(1, 2)
	tmpl, _ := b.Build()

	coll := tsgraph.NewCollection(tmpl, 0, 60)
	for step := 0; step < 2; step++ {
		ins := tsgraph.NewInstance(tmpl, step, coll.TimeOf(step))
		for v := range ins.VertexCols[0].Floats {
			ins.VertexCols[0].Floats[v] = float64(step + v + 1)
		}
		if err := coll.Append(ins); err != nil {
			log.Fatal(err)
		}
	}

	assign, _ := tsgraph.PartitionMultilevel(tmpl, 1, 0)
	parts, _ := tsgraph.BuildSubgraphs(tmpl, assign)

	res, err := tsgraph.Run(&tsgraph.Job{
		Template: tmpl,
		Parts:    parts,
		Source:   tsgraph.MemorySource{C: coll},
		Program:  sumProgram{},
		Pattern:  tsgraph.SequentiallyDependent,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range res.Outputs {
		fmt.Printf("t%d total %.0f\n", o.Timestep, o.Data)
	}
	// Output:
	// t0 total 6
	// t1 total 15
}

// sumProgram adds this timestep's loads to the running total received over
// the temporal edge.
type sumProgram struct{}

func (sumProgram) Compute(ctx *tsgraph.Context, sg *tsgraph.Subgraph, timestep, superstep int, msgs []tsgraph.Message) {
	prev := 0.0
	for _, m := range msgs {
		prev += m.Payload.(float64)
	}
	loads := ctx.Instance().VertexFloats(ctx.Template(), "load")
	sum := prev
	for _, lv := range sg.Verts {
		sum += loads[sg.Part.GlobalIdx[lv]]
	}
	ctx.Output(sum)
	ctx.SendToNextTimestep(sum)
	ctx.VoteToHalt()
}

// ExampleTDSP runs time-dependent shortest path on a generated road
// network and reports reachability.
func ExampleTDSP() {
	tmpl := tsgraph.RoadNetwork(tsgraph.RoadConfig{Rows: 8, Cols: 8, Seed: 1})
	coll, _ := tsgraph.RandomLatencies(tmpl, tsgraph.LatencyConfig{
		Timesteps: 10, Delta: 60, Min: 5, Max: 50, Seed: 2,
	})
	assign, _ := tsgraph.PartitionMultilevel(tmpl, 2, 0)
	parts, _ := tsgraph.BuildSubgraphs(tmpl, assign)

	arrivals, _, err := tsgraph.TDSP(tmpl, parts, 0, tsgraph.MemorySource{C: coll},
		60, tsgraph.AttrLatency, tsgraph.EngineConfig{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, a := range arrivals {
		if !math.IsInf(a, 1) {
			reached++
		}
	}
	fmt.Printf("reached %d of %d vertices\n", reached, tmpl.NumVertices())
	// Output:
	// reached 64 of 64 vertices
}

// ExampleAggregateHashtag counts a hashtag across every instance with the
// eventually dependent pattern.
func ExampleAggregateHashtag() {
	tmpl := tsgraph.SmallWorld(tsgraph.SmallWorldConfig{N: 200, M: 2, Seed: 3})
	sir, _ := tsgraph.SIRTweets(tmpl, tsgraph.SIRConfig{
		Timesteps: 5, Delta: 60, Memes: []string{"#go"},
		SeedsPerMeme: 3, HitProb: 0.4, Seed: 4,
	})
	assign, _ := tsgraph.PartitionMultilevel(tmpl, 2, 0)
	parts, _ := tsgraph.BuildSubgraphs(tmpl, assign)

	stats, _, err := tsgraph.AggregateHashtag(tmpl, parts, "#go", tsgraph.AttrTweets,
		tsgraph.MemorySource{C: sir.Collection}, tsgraph.EngineConfig{}, nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d timesteps counted, total > 0: %v\n", len(stats.Counts), stats.Total > 0)
	// Output:
	// 5 timesteps counted, total > 0: true
}
