package tsgraph_test

import (
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/experiments"
	"tsgraph/internal/gen"
	"tsgraph/internal/obs"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// Benchmarks regenerate each of the paper's tables and figures at the
// Small scale (run `cmd/tsbench -scale medium` for the full-size harness).
// Reported metrics: ns/op is the real single-machine wall time of one full
// experiment; sim_ms/op is the simulated cluster time where applicable.

var (
	benchOnce sync.Once
	benchRoad *experiments.Dataset
	benchSW   *experiments.Dataset
)

func benchDatasets(b *testing.B) (*experiments.Dataset, *experiments.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		road, sw, err := experiments.BuildDatasets(experiments.Small)
		if err != nil {
			panic(err)
		}
		benchRoad, benchSW = road, sw
	})
	return benchRoad, benchSW
}

var benchCfg = bsp.Config{CoresPerHost: 2}

// BenchmarkSuperstepHotPath isolates the engine's per-superstep overhead
// from algorithm cost: a fixed instance, a trivial Compute, and many
// supersteps per Run, so allocs/op is dominated by the superstep
// scaffolding (inbox handling, barriers, scratch state) rather than user
// work. Run with -benchmem (ReportAllocs is on) to track the zero-alloc
// hot-path contract.
func BenchmarkSuperstepHotPath(b *testing.B) {
	const supersteps = 64
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, Seed: 42})
	a, err := (partition.Multilevel{Seed: 2}).Partition(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		b.Fatal(err)
	}
	e := bsp.NewEngine(parts, bsp.Config{CoresPerHost: 2})
	prog := bsp.ComputeFunc(func(ctx *bsp.Context, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
		if superstep < supersteps-1 {
			ctx.SendToAllNeighbors(superstep)
			return
		}
		ctx.VoteToHalt()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(prog, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Supersteps != supersteps {
			b.Fatalf("supersteps = %d, want %d", res.Supersteps, supersteps)
		}
	}
}

// BenchmarkTracerOverhead runs the superstep hot-path workload with the obs
// tracer disabled (the default: a nil-check plus one atomic load per
// instrumentation site) and enabled (one atomic counter increment plus a
// struct store into the preallocated span ring). The contract is near-zero
// overhead disabled and <5% ns/op enabled; compare the two sub-benchmarks.
func BenchmarkTracerOverhead(b *testing.B) {
	const supersteps = 64
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, Seed: 42})
	a, err := (partition.Multilevel{Seed: 2}).Partition(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		b.Fatal(err)
	}
	prog := bsp.ComputeFunc(func(ctx *bsp.Context, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
		if superstep < supersteps-1 {
			ctx.SendToAllNeighbors(superstep)
			return
		}
		ctx.VoteToHalt()
	})
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := bsp.NewEngine(parts, bsp.Config{CoresPerHost: 2})
			if mode.enabled {
				tracer := obs.NewTracer(0)
				tracer.Enable()
				e.SetTracer(tracer)
				e.SetTraceTimestep(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Run(prog, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Supersteps != supersteps {
					b.Fatalf("supersteps = %d, want %d", res.Supersteps, supersteps)
				}
			}
		})
	}
}

// BenchmarkTableDatasets regenerates the §IV-A dataset table.
func BenchmarkTableDatasets(b *testing.B) {
	b.ReportAllocs()
	road, sw := benchDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.DatasetTable(road, sw)
		if len(rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTableEdgeCut regenerates the §IV-B edge-cut table.
func BenchmarkTableEdgeCut(b *testing.B) {
	b.ReportAllocs()
	road, sw := benchDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EdgeCutTable([]*experiments.Dataset{road, sw}, []int{3, 6, 9}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// benchScalabilityCell benchmarks one Fig 5a cell and reports its simulated
// cluster time.
func benchScalabilityCell(b *testing.B, ds *experiments.Dataset, algo string, k int) {
	b.Helper()
	b.ReportAllocs()
	var lastSim float64
	for i := 0; i < b.N; i++ {
		cell, _, err := experiments.RunAlgo(ds, algo, k, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		lastSim = cell.SimTime.Seconds() * 1000
	}
	b.ReportMetric(lastSim, "sim_ms/op")
}

// BenchmarkFig5a regenerates Fig 5a: each algorithm × dataset × partition
// count.
func BenchmarkFig5a(b *testing.B) {
	b.ReportAllocs()
	road, sw := benchDatasets(b)
	for _, algo := range []string{experiments.AlgoHash, experiments.AlgoMeme, experiments.AlgoTDSP} {
		for _, ds := range []*experiments.Dataset{road, sw} {
			for _, k := range []int{3, 6, 9} {
				b.Run(algo+"/"+ds.Name+"/k="+string(rune('0'+k)), func(b *testing.B) {
					benchScalabilityCell(b, ds, algo, k)
				})
			}
		}
	}
}

// BenchmarkFig5b regenerates Fig 5b: the Giraph-like baseline comparison.
func BenchmarkFig5b(b *testing.B) {
	b.ReportAllocs()
	road, sw := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Baseline([]*experiments.Dataset{road, sw}, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad baseline")
		}
	}
}

// BenchmarkFig6a regenerates Fig 6a: per-timestep time for TDSP on the road
// network over GoFS with synchronized GC.
func BenchmarkFig6a(b *testing.B) {
	b.ReportAllocs()
	road, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunTimestepSeries(road, experiments.AlgoTDSP,
			[]int{3}, b.TempDir(), 10, 5, 10, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 1 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkFig6b regenerates Fig 6b: per-timestep time for MEME on the
// small world.
func BenchmarkFig6b(b *testing.B) {
	b.ReportAllocs()
	_, sw := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunTimestepSeries(sw, experiments.AlgoMeme,
			[]int{3}, b.TempDir(), 10, 5, 10, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 1 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkFig7a regenerates Fig 7a: vertices finalized by TDSP per
// timestep per partition.
func BenchmarkFig7a(b *testing.B) {
	b.ReportAllocs()
	road, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		ps, _, err := experiments.RunProgress(road, experiments.AlgoTDSP, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps.PerPart) != 6 {
			b.Fatal("bad progress")
		}
	}
}

// BenchmarkFig7b regenerates Fig 7b: compute/overhead split per partition
// for TDSP on the road network.
func BenchmarkFig7b(b *testing.B) {
	b.ReportAllocs()
	road, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		ur, err := experiments.RunUtilization(road, experiments.AlgoTDSP, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ur.Utils) != 6 {
			b.Fatal("bad utilization")
		}
	}
}

// BenchmarkFig7c regenerates Fig 7c: vertices colored by MEME per timestep.
func BenchmarkFig7c(b *testing.B) {
	b.ReportAllocs()
	_, sw := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		ps, _, err := experiments.RunProgress(sw, experiments.AlgoMeme, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps.PerPart) != 6 {
			b.Fatal("bad progress")
		}
	}
}

// BenchmarkFig7d regenerates Fig 7d: compute/overhead split for MEME.
func BenchmarkFig7d(b *testing.B) {
	b.ReportAllocs()
	_, sw := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		ur, err := experiments.RunUtilization(sw, experiments.AlgoMeme, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ur.Utils) != 6 {
			b.Fatal("bad utilization")
		}
	}
}

// BenchmarkAblationPartitioner compares hash/BFS/multilevel partitioning
// end to end (DESIGN.md §5).
func BenchmarkAblationPartitioner(b *testing.B) {
	b.ReportAllocs()
	road, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PartitionerAblation(road, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblationTemporal measures the temporal-parallelism headroom the
// paper leaves unexploited for HASH.
func BenchmarkAblationTemporal(b *testing.B) {
	b.ReportAllocs()
	_, sw := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TemporalParallelismAblation(sw, 3, []int{1, 4}, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblationPacking sweeps the GoFS temporal packing factor.
func BenchmarkAblationPacking(b *testing.B) {
	b.ReportAllocs()
	road, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PackingAblation(road, 3, []int{1, 5, 10}, b.TempDir(), benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblationPageRankModels compares PageRank message volume under
// the vertex-centric vs subgraph-centric models.
func BenchmarkAblationPageRankModels(b *testing.B) {
	b.ReportAllocs()
	_, sw := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PageRankModelAblation(sw, 6, 15, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("bad ablation")
		}
		b.ReportMetric(float64(rows[0].Messages)/float64(rows[1].Messages), "msg_reduction_x")
	}
}

// BenchmarkExtensionElastic measures the elastic-scaling headroom analysis
// (paper §IV-E future work).
func BenchmarkExtensionElastic(b *testing.B) {
	b.ReportAllocs()
	road, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		row, err := experiments.ElasticHeadroom(road, experiments.AlgoTDSP, 6, benchCfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.Headroom()*100, "headroom_pct")
	}
}
