module tsgraph

go 1.22
